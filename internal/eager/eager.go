// Package eager models the eager (dual-path) execution application of
// confidence estimation (§2.2, "Eager Execution"; Klauser et al.'s
// PolyPath work [8]).
//
// An eager-execution machine forks at a low-confidence branch and fetches
// both successor paths; when the branch resolves, the wrong path is
// killed. Forking converts a potential full misprediction penalty into a
// bounded fork cost (both paths get half the front-end bandwidth until
// resolution), so the profitability of a confidence estimator follows
// directly from its committed-branch quadrants:
//
//   - Ilc (mispredicted, flagged low confidence): penalty avoided at the
//     fork cost — the win case, governed by SPEC.
//   - Clc (correct, flagged low confidence): fork cost wasted — the
//     false-alarm case, governed by PVN.
//   - Ihc (mispredicted, flagged high confidence): full penalty, as in
//     the baseline.
//
// The package evaluates this model over measured quadrants rather than
// simulating dual-path timing directly; the trade-off surface (which
// estimator wins, and when forking helps at all) is exactly the paper's
// argument that eager execution wants high PVN and SPEC.
package eager

import (
	"fmt"
	"strings"

	"specctrl/internal/metrics"
)

// Model holds the cost parameters of the dual-path machine.
type Model struct {
	// MispredictPenalty is the cycles lost per misprediction in the
	// baseline machine (redirect + refill).
	MispredictPenalty float64
	// ForkCost is the cycles of front-end bandwidth lost per forked
	// branch (both paths share fetch until resolution).
	ForkCost float64
}

// DefaultModel matches the simulator's default timing: a ~7-cycle
// misprediction penalty (3-cycle resolve + 1 redirect + 3 extra) and a
// 2-cycle effective fork cost (half bandwidth over a 3-4 cycle window).
func DefaultModel() Model {
	return Model{MispredictPenalty: 7, ForkCost: 2}
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.MispredictPenalty <= 0 || m.ForkCost < 0 {
		return fmt.Errorf("eager: invalid model %+v", m)
	}
	if m.ForkCost >= m.MispredictPenalty {
		return fmt.Errorf("eager: fork cost %.1f must undercut the penalty %.1f",
			m.ForkCost, m.MispredictPenalty)
	}
	return nil
}

// Outcome is the model's evaluation of one estimator's quadrants.
type Outcome struct {
	// BaselineCost is branch-misprediction cycles per 1000 committed
	// branches without eager execution.
	BaselineCost float64
	// EagerCost is the same with confidence-directed forking.
	EagerCost float64
	// Forks is forks per 1000 committed branches (Clc + Ilc).
	Forks float64
	// SavedPerKilo is BaselineCost - EagerCost.
	SavedPerKilo float64
}

// Profitable reports whether forking on this estimator's low-confidence
// branches beats the baseline.
func (o Outcome) Profitable() bool { return o.SavedPerKilo > 0 }

// Evaluate applies the model to a committed-branch quadrant table.
func (m Model) Evaluate(q metrics.Quadrant) (Outcome, error) {
	if err := m.Validate(); err != nil {
		return Outcome{}, err
	}
	total := float64(q.Total())
	if total == 0 {
		return Outcome{}, fmt.Errorf("eager: empty quadrant")
	}
	scale := 1000.0 / total
	baseline := float64(q.Incorrect()) * m.MispredictPenalty * scale
	// Eager: every low-confidence branch forks (costs ForkCost); only
	// high-confidence mispredictions still pay the full penalty.
	eager := (float64(q.Clc)+float64(q.Ilc))*m.ForkCost*scale +
		float64(q.Ihc)*m.MispredictPenalty*scale
	return Outcome{
		BaselineCost: baseline,
		EagerCost:    eager,
		Forks:        (float64(q.Clc) + float64(q.Ilc)) * scale,
		SavedPerKilo: baseline - eager,
	}, nil
}

// Row pairs an estimator label with its outcome, for ranking.
type Row struct {
	Estimator string
	Outcome   Outcome
	Metrics   metrics.Metrics
}

// Rank evaluates several estimators' quadrants under the model and
// returns rows ordered as given (callers typically sort by SavedPerKilo).
func (m Model) Rank(labels []string, qs []metrics.Quadrant) ([]Row, error) {
	if len(labels) != len(qs) {
		return nil, fmt.Errorf("eager: %d labels for %d quadrants", len(labels), len(qs))
	}
	rows := make([]Row, len(qs))
	for i, q := range qs {
		o, err := m.Evaluate(q)
		if err != nil {
			return nil, fmt.Errorf("eager %s: %w", labels[i], err)
		}
		rows[i] = Row{Estimator: labels[i], Outcome: o, Metrics: q.Compute()}
	}
	return rows, nil
}

// Render prints the ranking table.
func Render(model Model, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Eager execution model: penalty=%.1f fork=%.1f (cycles per 1000 committed branches)\n",
		model.MispredictPenalty, model.ForkCost)
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %7s %6s %6s\n",
		"estimator", "baseline", "eager", "saved", "forks", "spec", "pvn")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.1f %9.1f %+9.1f %7.0f %5.0f%% %5.0f%%\n",
			r.Estimator, r.Outcome.BaselineCost, r.Outcome.EagerCost,
			r.Outcome.SavedPerKilo, r.Outcome.Forks,
			r.Metrics.Spec*100, r.Metrics.PVN*100)
	}
	return b.String()
}
