package runner

import (
	"context"
	"strings"
	"sync"
	"testing"

	"specctrl/internal/obs/span"
)

// TestRunEmitsCellSpans: with a tracer attached, every cell produces a
// run span and a queue-wait span under one trace, the run span carries
// the cell key and a worker attribute, and the cell's context exposes
// the span so cell bodies can parent their own spans under it. Run with
// -race this also exercises concurrent span emission from all workers.
func TestRunEmitsCellSpans(t *testing.T) {
	tr := span.New(span.Options{})
	specs := grid(48)
	sawCtx := 0
	var mu sync.Mutex
	cell := func(ctx context.Context, sp Spec) (any, error) {
		if cs := span.FromContext(ctx); cs != nil {
			// Child spans from inside the cell must be legal concurrently.
			c := tr.Child(cs.Context(), "body:"+sp.Key())
			c.End()
			mu.Lock()
			sawCtx++
			mu.Unlock()
		}
		return nil, nil
	}
	res, err := New(Options{Jobs: 8, Tracer: tr}).Run(context.Background(), specs, cell)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results, want %d", len(res), len(specs))
	}
	if sawCtx != len(specs) {
		t.Fatalf("cell span reached %d of %d cell contexts", sawCtx, len(specs))
	}

	spans := tr.Snapshot()
	var traces = map[span.TraceID]bool{}
	cellSpans, waitSpans, bodySpans := 0, 0, 0
	for i := range spans {
		s := &spans[i]
		traces[s.Context().Trace] = true
		switch {
		case strings.HasPrefix(s.Name, "cell:"):
			cellSpans++
			if s.Attr("key") == nil || s.Attr("worker") == nil {
				t.Errorf("%s missing key/worker attrs: %+v", s.Name, s.Attrs)
			}
			if s.Finish.Before(s.Start) {
				t.Errorf("%s finishes before it starts", s.Name)
			}
		case strings.HasPrefix(s.Name, "wait:"):
			waitSpans++
		case strings.HasPrefix(s.Name, "body:"):
			bodySpans++
		}
	}
	if cellSpans != len(specs) || waitSpans != len(specs) || bodySpans != len(specs) {
		t.Fatalf("spans: %d cell, %d wait, %d body; want %d of each",
			cellSpans, waitSpans, bodySpans, len(specs))
	}
	if len(traces) != 1 {
		t.Fatalf("run emitted %d TraceIDs, want 1", len(traces))
	}
}

// TestRunNilTracerNoSpans: the default path stays span-free — no
// tracer, no span in the cell context.
func TestRunNilTracerNoSpans(t *testing.T) {
	cell := func(ctx context.Context, sp Spec) (any, error) {
		if span.FromContext(ctx) != nil {
			t.Error("cell context carries a span with tracing disabled")
		}
		return nil, nil
	}
	if _, err := New(Options{Jobs: 4}).Run(context.Background(), grid(8), cell); err != nil {
		t.Fatal(err)
	}
}
