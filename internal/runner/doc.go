// Package runner executes experiment grids on a bounded work-stealing
// worker pool.
//
// Every experiment in internal/experiments is a grid of independent
// simulations — one cell per workload × predictor × estimator-config
// combination. The runner's job is to execute those cells concurrently
// without changing any observable result.
//
// # The Spec/Cell contract
//
// A grid is a []Spec; each Spec names exactly one cell and carries the
// cell's private RNG seed. The cell body is a Cell func. The contract a
// Cell must honor for the runner's determinism guarantee to hold:
//
//   - No shared mutable state. Every pipeline, predictor, estimator,
//     cache, and workload program the cell needs is constructed inside
//     the cell. Cells may close over read-only configuration only.
//   - No process-global randomness. Any randomness is drawn from a
//     generator seeded with spec.Seed (derived as
//     DeriveSeed(baseSeed, spec.Key()) — a pure function of the spec,
//     never of scheduling).
//   - No dependence on execution order. A cell may not read another
//     cell's output or any accumulator written by other cells.
//
// # Determinism
//
// Run returns results positionally aligned with the input specs, so the
// caller's assemble step iterates in spec order — the same order the old
// serial loops used — regardless of which worker finished which cell
// first. Identical specs therefore produce byte-identical assembled
// output at -jobs 1 and -jobs N, on any machine.
//
// # Scheduling
//
// Cells are dealt round-robin onto per-worker deques; an idle worker
// steals half the largest remaining queue. Cell runtimes vary by an
// order of magnitude across workloads (gcc vs compress), so stealing —
// rather than a static partition — is what keeps the tail short.
//
// # Observability and cancellation
//
// When Options.Obs is set, the runner publishes per-worker queue depth
// (specctrl_runner_queue_depth), completed cells and steal counts
// (specctrl_runner_cells_total, specctrl_runner_steals_total), the
// worker count (specctrl_runner_workers), and a wall-time distribution
// of cell runtimes (specctrl_sim_cell_seconds) through the internal/obs
// registry. When Options.Tracer is set, every cell additionally emits
// two spans under Options.SpanParent: a queue-wait span (enqueue to
// dequeue, rendered on a per-worker "queue N" track) and a run span
// named "cell:<key>" carrying worker, steal, and wait attributes on the
// worker's own timeline track; the run span rides into the cell via
// span.NewContext, so deeper layers (replay, caching) can attach their
// phases to it. With Tracer nil the whole path costs one nil-check per
// cell and allocates nothing. Cancelling the context stops dispatch at
// the next cell boundary; already-finished cells keep their results
// (Result.Ran reports which ones ran) and Run returns ctx.Err().
package runner
