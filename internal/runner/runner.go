package runner

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
)

// Spec identifies one independent grid cell. The four name fields form
// the cell's stable identity (Key); Seed is filled in by Run from the
// base seed and that identity.
type Spec struct {
	Experiment string // experiment family, e.g. "table2"
	Workload   string // benchmark name, e.g. "gcc"
	Predictor  string // branch predictor name, e.g. "gshare"
	Variant    string // estimator/config discriminator, e.g. "main"

	// Seed is the cell's private RNG stream, derived by Run as
	// DeriveSeed(baseSeed, Key()). Cells must take any randomness they
	// need from this value and never from process-global state.
	Seed uint64 `json:"-"`
}

// Key returns the stable identity of the spec, used for seed
// derivation, sharding and cross-machine result merging.
func (s Spec) Key() string {
	return s.Experiment + "/" + s.Workload + "/" + s.Predictor + "/" + s.Variant
}

// Cell executes one spec and returns its result. See the package
// comment for the isolation rules a Cell must follow.
type Cell func(ctx context.Context, spec Spec) (any, error)

// Result is the outcome of one cell. Run returns results positionally
// aligned with its input specs.
type Result struct {
	Spec  Spec
	Value any
	Err   error
	Ran   bool // false when skipped: not in this shard, or cancelled first
}

// Options configures a Runner.
type Options struct {
	// Jobs is the worker-pool size. Values <= 1 run serially (a single
	// worker), which is also the reference order for determinism tests.
	Jobs int

	// BaseSeed is the root of every cell's derived seed. Zero selects
	// DefaultBaseSeed so that library callers and the CLI agree.
	BaseSeed uint64

	// Shard restricts execution to every Count-th spec (see Shard).
	// Skipped specs come back with Ran == false.
	Shard Shard

	// Obs, when non-nil, receives the runner's live metrics.
	Obs *obs.Registry

	// Tracer, when non-nil, records per-cell wait and run spans. The
	// nil Tracer disables tracing at the cost of one nil-check per cell.
	Tracer *span.Tracer

	// SpanParent is the span context cell spans are parented under.
	// When invalid (the zero value) and Tracer is set, Run opens its own
	// root span covering the whole grid.
	SpanParent span.Context
}

// cellSecondsBounds buckets specctrl_sim_cell_seconds: cells span
// roughly 1 ms (compress, small grids) to tens of seconds (gcc at full
// trace length).
var cellSecondsBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefaultBaseSeed is the published base seed for all experiment grids;
// results_full.txt and EXPERIMENTS.md are generated with it.
const DefaultBaseSeed uint64 = 0x5eedc0de15ca1998

// Runner executes spec grids. Construct with New; a Runner is safe for
// sequential reuse across grids but a single Run call must complete
// before the next begins.
type Runner struct {
	opts Options
}

// New returns a Runner with the given options.
func New(opts Options) *Runner {
	if opts.Jobs < 1 {
		opts.Jobs = 1
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = DefaultBaseSeed
	}
	return &Runner{opts: opts}
}

// Run executes every spec owned by this runner's shard and returns one
// Result per input spec, positionally aligned with specs.
//
// On a cell error the runner cancels outstanding work and returns the
// lowest-indexed error among the cells that ran. On context
// cancellation it returns ctx.Err().
// In both cases the partial results are still returned: completed cells
// carry their values and Ran == true.
func (r *Runner) Run(ctx context.Context, specs []Spec, cell Cell) ([]Result, error) {
	if err := r.opts.Shard.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, len(specs))
	for i := range specs {
		sp := specs[i]
		sp.Seed = DeriveSeed(r.opts.BaseSeed, sp.Key())
		results[i].Spec = sp
	}

	// Shard filter: this machine owns every Count-th spec.
	mine := make([]int, 0, len(specs))
	for i := range specs {
		if r.opts.Shard.Owns(i) {
			mine = append(mine, i)
		}
	}
	jobs := r.opts.Jobs
	if jobs > len(mine) {
		jobs = len(mine)
	}
	if jobs < 1 {
		jobs = 1
	}

	var (
		cellsDone *obs.Counter
		steals    *obs.Counter
		cellHist  *obs.Histogram
	)
	queueGauge := func(int) *obs.Gauge { return nil }
	if reg := r.opts.Obs; reg != nil {
		reg.Gauge("specctrl_runner_workers", nil).SetUint(uint64(jobs))
		cellsDone = reg.Counter("specctrl_runner_cells_total", nil)
		steals = reg.Counter("specctrl_runner_steals_total", nil)
		cellHist = reg.Histogram("specctrl_sim_cell_seconds", nil, cellSecondsBounds)
		queueGauge = func(w int) *obs.Gauge {
			return reg.Gauge("specctrl_runner_queue_depth", obs.Labels{"worker": strconv.Itoa(w)})
		}
	}

	// Span parent for this grid: the caller's, or a private root so a
	// bare traced Run still yields a coherent trace.
	tr := r.opts.Tracer
	parent := r.opts.SpanParent
	var enqueued time.Time
	if tr != nil {
		if !parent.Valid() {
			runSpan := tr.Root("run")
			parent = runSpan.Context()
			defer runSpan.End()
		}
		enqueued = time.Now()
	}

	// Deal cells round-robin so each worker starts with a spread of
	// workloads (adjacent specs are usually the same slow benchmark).
	deques := make([]*deque, jobs)
	for w := range deques {
		deques[w] = &deque{gauge: queueGauge(w)}
	}
	for k, i := range mine {
		deques[k%jobs].push(i)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		errIdx   = -1
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for runCtx.Err() == nil {
				stolen := false
				i, ok := deques[w].pop()
				if !ok {
					victim, ok := stealInto(deques, w)
					if !ok {
						return
					}
					if steals != nil {
						steals.Inc()
					}
					i, stolen = victim, true
				}
				cellCtx := runCtx
				var cellSpan *span.Span
				var started time.Time
				if tr != nil || cellHist != nil {
					started = time.Now()
				}
				if tr != nil {
					key := results[i].Spec.Key()
					// Queue-wait phase, backdated to enqueue, on the
					// worker's queue track.
					ws := tr.Child(parent, "wait:"+key,
						span.Int(span.TIDAttr, int64(1000+w+1)),
						span.Str(span.ThreadAttr, "queue "+strconv.Itoa(w)),
						span.Str("key", key))
					ws.Start = enqueued
					ws.EndAt(started)
					// Run phase on the worker's own timeline track; the
					// span rides into the cell so replay/cache layers can
					// hang their phases under it.
					cellSpan = tr.Child(parent, "cell:"+key,
						span.Str("key", key),
						span.Int("worker", int64(w)),
						span.Bool("stolen", stolen),
						span.Int("wait_ns", started.Sub(enqueued).Nanoseconds()),
						span.Int(span.TIDAttr, int64(w+1)),
						span.Str(span.ThreadAttr, "worker "+strconv.Itoa(w)))
					cellSpan.Start = started
					cellCtx = span.NewContext(runCtx, cellSpan)
				}
				v, err := cell(cellCtx, results[i].Spec)
				if tr != nil || cellHist != nil {
					elapsed := time.Since(started)
					if cellSpan != nil {
						if err != nil {
							cellSpan.SetAttrs(span.Str("error", err.Error()))
						}
						cellSpan.End()
					}
					if cellHist != nil {
						cellHist.Observe(elapsed.Seconds())
					}
				}
				results[i].Value = v
				results[i].Err = err
				results[i].Ran = true
				if cellsDone != nil {
					cellsDone.Inc()
				}
				if err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if errIdx >= 0 {
		return results, fmt.Errorf("runner: cell %s: %w", results[errIdx].Spec.Key(), firstErr)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// stealInto takes work for worker w from the longest other deque,
// moving half of it onto w's deque and returning one index to run.
func stealInto(deques []*deque, w int) (int, bool) {
	for {
		victim, depth := -1, 0
		for v := range deques {
			if v == w {
				continue
			}
			if d := deques[v].depth(); d > depth {
				victim, depth = v, d
			}
		}
		if victim < 0 {
			return 0, false
		}
		batch := deques[victim].stealHalf()
		if len(batch) == 0 {
			continue // raced with the victim draining; look again
		}
		deques[w].push(batch[1:]...)
		return batch[0], true
	}
}
