package runner

import "specctrl/internal/rng"

// DeriveSeed maps (base seed, spec key) to the cell's private RNG
// stream: an FNV-1a hash of the key folded into the base and whitened
// through one splitmix64 step. It is a pure function of its arguments —
// never of worker identity or scheduling — which is what makes cell
// results independent of execution order. The mapping is pinned by a
// golden test; changing it changes every published experiment number.
func DeriveSeed(base uint64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return rng.NewSplitMix64(base ^ h).Next()
}
