package runner

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard restricts a Run to every Count-th spec, allowing a sweep to be
// split across machines: shard i/n owns specs whose index ≡ i (mod n).
// Because ownership is a function of spec index — not runtime load —
// the n shards partition the grid exactly, and their dumped cell
// results can be merged on any machine to reproduce the unsharded
// output byte for byte.
//
// The zero value (Count 0) means "no sharding": one machine owns
// everything.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/n" (e.g. "2/8", zero-based index).
func ParseShard(s string) (Shard, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("runner: shard %q: want i/n (e.g. 2/8)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("runner: shard %q: want i/n (e.g. 2/8)", s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate reports whether the shard is well-formed.
func (s Shard) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("runner: invalid shard %d/%d: want 0 <= index < count", s.Index, s.Count)
	}
	return nil
}

// Active reports whether the shard restricts execution at all.
func (s Shard) Active() bool { return s.Count > 1 }

// Owns reports whether this shard executes the spec at index i.
func (s Shard) Owns(i int) bool {
	if s.Count <= 1 {
		return true
	}
	return i%s.Count == s.Index
}

// String renders the shard in the "i/n" form ParseShard accepts.
func (s Shard) String() string {
	if s.Count == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}
