package runner

import (
	"sync"

	"specctrl/internal/obs"
)

// deque is a mutex-guarded work queue of spec indices. The owner pops
// from the front (keeping execution roughly in spec order for progress
// reporting); thieves take the back half. Contention is negligible —
// operations are O(queue) pointer moves between multi-millisecond
// simulation cells.
type deque struct {
	mu    sync.Mutex
	items []int
	gauge *obs.Gauge // queue depth, nil when obs is off
}

func (d *deque) publish() {
	if d.gauge != nil {
		d.gauge.SetUint(uint64(len(d.items)))
	}
}

func (d *deque) push(items ...int) {
	if len(items) == 0 {
		return
	}
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.publish()
	d.mu.Unlock()
}

func (d *deque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	i := d.items[0]
	d.items = d.items[1:]
	d.publish()
	return i, true
}

// stealHalf removes and returns the back half (at least one item) of
// the queue, or nil when it is empty.
func (d *deque) stealHalf() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	batch := make([]int, take)
	copy(batch, d.items[n-take:])
	d.items = d.items[:n-take]
	d.publish()
	return batch
}

func (d *deque) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
