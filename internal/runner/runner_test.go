package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specctrl/internal/obs"
)

// grid returns n specs with distinct keys.
func grid(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{
			Experiment: "test",
			Workload:   fmt.Sprintf("w%d", i),
			Predictor:  "gshare",
			Variant:    "main",
		}
	}
	return specs
}

// TestRunPositionalDeterminism checks that results come back aligned
// with the input specs and identical across worker counts, even when
// cells finish out of order.
func TestRunPositionalDeterminism(t *testing.T) {
	specs := grid(37)
	cell := func(_ context.Context, sp Spec) (any, error) {
		// Uneven, scheduling-visible durations: later cells finish first.
		time.Sleep(time.Duration(len(sp.Workload)) * 100 * time.Microsecond)
		return sp.Key() + ":" + fmt.Sprint(sp.Seed), nil
	}
	var ref []Result
	for _, jobs := range []int{1, 4, 16} {
		res, err := New(Options{Jobs: jobs}).Run(context.Background(), specs, cell)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, r := range res {
			if !r.Ran || r.Err != nil {
				t.Fatalf("jobs=%d: cell %d not run cleanly: %+v", jobs, i, r)
			}
			if r.Spec.Key() != specs[i].Key() {
				t.Fatalf("jobs=%d: result %d misaligned: %s", jobs, i, r.Spec.Key())
			}
		}
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res, ref) {
			t.Fatalf("jobs=%d: results differ from serial reference", jobs)
		}
	}
}

// TestStealOccurs forces one worker's queue to be slow and checks the
// steal counter moves: the parallel path must not silently degrade to
// static partitioning.
func TestStealOccurs(t *testing.T) {
	reg := obs.NewRegistry()
	specs := grid(64)
	// Round-robin dealing gives worker 0 the specs with index ≡ 0
	// (mod 8). Make exactly those slow: the other workers drain their
	// queues quickly and must steal worker 0's backlog to finish.
	cell := func(_ context.Context, sp Spec) (any, error) {
		var i int
		fmt.Sscanf(sp.Workload, "w%d", &i)
		d := 50 * time.Microsecond
		if i%8 == 0 {
			d = 3 * time.Millisecond
		}
		time.Sleep(d)
		return nil, nil
	}
	if _, err := New(Options{Jobs: 8, Obs: reg}).Run(context.Background(), specs, cell); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("specctrl_runner_cells_total", nil).Value(); got != 64 {
		t.Fatalf("cells_total = %d, want 64", got)
	}
	if reg.Counter("specctrl_runner_steals_total", nil).Value() == 0 {
		t.Fatal("no steals observed: idle workers left worker 0's backlog alone")
	}
}

// TestCancelMidFlight cancels a sweep while cells are running and
// checks partial-result reporting and that no worker goroutines leak.
func TestCancelMidFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	cell := func(ctx context.Context, _ Spec) (any, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return "done", nil
	}
	res, err := New(Options{Jobs: 4}).Run(ctx, grid(100), cell)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ran, skipped := 0, 0
	for _, r := range res {
		if r.Ran {
			ran++
			if r.Value != "done" {
				t.Fatalf("ran cell has wrong value %v", r.Value)
			}
		} else {
			skipped++
		}
	}
	if ran == 0 || skipped == 0 {
		t.Fatalf("want a mid-flight split, got ran=%d skipped=%d", ran, skipped)
	}
	// Workers exit at the next cell boundary; give them a moment.
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestCellError checks that a failing cell cancels the sweep and is
// reported with its spec key.
func TestCellError(t *testing.T) {
	boom := errors.New("boom")
	cell := func(_ context.Context, sp Spec) (any, error) {
		if sp.Workload == "w5" {
			return nil, boom
		}
		return 1, nil
	}
	res, err := New(Options{Jobs: 4}).Run(context.Background(), grid(20), cell)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if want := "test/w5/gshare/main"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q does not name failing cell %q", err, want)
	}
	if !res[5].Ran || res[5].Err == nil {
		t.Fatalf("failing cell result not recorded: %+v", res[5])
	}
}

// TestShardPartition checks that n shards partition the grid exactly:
// every spec runs on exactly one shard.
func TestShardPartition(t *testing.T) {
	const n = 4
	specs := grid(26)
	owner := make([]int, len(specs))
	for i := range owner {
		owner[i] = -1
	}
	cell := func(_ context.Context, _ Spec) (any, error) { return true, nil }
	for s := 0; s < n; s++ {
		res, err := New(Options{Jobs: 2, Shard: Shard{Index: s, Count: n}}).
			Run(context.Background(), specs, cell)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Ran {
				if owner[i] != -1 {
					t.Fatalf("spec %d ran on shards %d and %d", i, owner[i], s)
				}
				owner[i] = s
			}
		}
	}
	for i, o := range owner {
		if o == -1 {
			t.Fatalf("spec %d ran on no shard", i)
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {0, 1},
		"2/8": {2, 8},
		"7/8": {7, 8},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Fatalf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "3", "8/8", "-1/4", "a/b", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) succeeded, want error", bad)
		}
	}
}

// TestDeriveSeedGolden pins the seed derivation. These values are part
// of the published results: every table in EXPERIMENTS.md was generated
// with them, so a change here is a change to every experiment.
func TestDeriveSeedGolden(t *testing.T) {
	golden := map[string]uint64{
		"table2/gcc/gshare/main":   0x468e97dc3294338a,
		"table2/go/mcfarling/main": 0x73fd7a5597ca680c,
		"xinput/perl/gshare/main":  0x98d92bd78984d661,
	}
	for key, want := range golden {
		if got := DeriveSeed(DefaultBaseSeed, key); got != want {
			t.Errorf("DeriveSeed(base, %q) = %#x, want %#x", key, got, want)
		}
	}
	// Distinct keys must get distinct streams.
	a := DeriveSeed(DefaultBaseSeed, "table2/gcc/gshare/main")
	b := DeriveSeed(DefaultBaseSeed, "table2/gcc/gshare/alt")
	if a == b {
		t.Fatal("distinct keys derived the same seed")
	}
	// And the derivation must depend on the base seed.
	if DeriveSeed(1, "k") == DeriveSeed(2, "k") {
		t.Fatal("base seed ignored")
	}
}
