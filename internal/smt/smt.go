// Package smt implements the multithreaded fetch-policy application of
// confidence estimation (§2.2, "SMT" and "Bandwidth multithreading").
//
// Several independent hardware threads share one fetch port. Each cycle a
// scheduler grants the port to one thread; the others' back ends still
// advance (branches resolve, squashes happen) but they fetch nothing.
// The confidence-directed policy avoids granting the port to threads
// with unresolved low-confidence branches — those threads are likely
// fetching wrong-path instructions that will be squashed, so the slot is
// better spent on a thread whose work will commit. The paper's claim:
// a high-PVN estimator makes thread switching profitable.
//
// Simplification vs real SMT hardware: each thread has private predictor
// and estimator tables (no cross-thread aliasing), and the granted
// thread uses the full fetch width. Both choices isolate the effect
// under study — the fetch policy — from table-sharing interference.
package smt

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
)

// Policy selects the fetch scheduler.
type Policy int

const (
	// RoundRobin grants the fetch port to threads in strict rotation.
	RoundRobin Policy = iota
	// ConfidenceGate prefers threads with no unresolved low-confidence
	// branches, rotating among them; if every thread is low-confidence,
	// it falls back to rotation over all.
	ConfidenceGate
	// ICount approximates Tullsen et al.'s ICOUNT policy with the
	// occupancy signal this model tracks: grant the thread with the
	// fewest unresolved branches (ties broken by rotation). Unlike
	// ConfidenceGate it cannot tell a probably-wrong in-flight branch
	// from a probably-right one.
	ICount
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case ConfidenceGate:
		return "confidence"
	default:
		return "icount"
	}
}

// Config parameterizes an SMT run.
type Config struct {
	// Policy selects the fetch scheduler.
	Policy Policy
	// CycleBudget is the number of cycles to simulate.
	CycleBudget uint64
	// Pipeline configures each thread's machine. MaxCommitted and
	// MaxCycles are ignored (the budget governs).
	Pipeline pipeline.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CycleBudget == 0 {
		return fmt.Errorf("smt: zero cycle budget")
	}
	return c.Pipeline.Validate()
}

// Result reports an SMT run.
type Result struct {
	Policy Policy
	// PerThread holds each thread's committed instructions within the
	// budget.
	PerThread []uint64
	// Committed is the aggregate committed instruction count.
	Committed uint64
	// Cycles is the simulated cycle count (= budget unless all threads
	// finished early).
	Cycles uint64
	// WrongPath is the aggregate squashed instruction count (wasted
	// fetch/execute work).
	WrongPath uint64
}

// Throughput returns aggregate committed instructions per cycle.
func (r *Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Run simulates the threads under the configured fetch policy. Each
// thread gets a fresh predictor and estimator from the factories; when
// f.Policy is set, each thread's own pipeline additionally runs under a
// fresh speculation-control policy, composing with the port grant.
func Run(cfg Config, progs []*isa.Program, f policy.Factories) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("smt: no threads")
	}
	pcfg := cfg.Pipeline
	pcfg.MaxCommitted = 0
	pcfg.MaxCycles = 0 // the budget loop bounds the run
	sims := make([]*pipeline.Sim, len(progs))
	done := make([]bool, len(progs))
	for i, p := range progs {
		tcfg := pcfg
		tcfg.Estimators = []conf.Estimator{f.Estimator()}
		tcfg.Policy = f.NewPolicy()
		sim, err := pipeline.New(tcfg, p, f.Predictor())
		if err != nil {
			return nil, fmt.Errorf("smt thread %d: %w", i, err)
		}
		sims[i] = sim
	}

	next := 0 // rotation cursor
	var cycles uint64
	for cycles = 0; cycles < cfg.CycleBudget; cycles++ {
		grant := pick(cfg.Policy, sims, done, &next)
		allDone := true
		for i, sim := range sims {
			if done[i] {
				continue
			}
			allDone = false
			d, err := sim.Tick(i == grant)
			if err != nil {
				return nil, fmt.Errorf("smt thread %d: %w", i, err)
			}
			if d {
				done[i] = true
			}
		}
		if allDone {
			break
		}
	}

	res := &Result{Policy: cfg.Policy, Cycles: cycles}
	for _, sim := range sims {
		st := sim.Finish()
		res.PerThread = append(res.PerThread, st.Committed)
		res.Committed += st.Committed
		res.WrongPath += st.WrongPath
	}
	return res, nil
}

// pick chooses the thread to grant the fetch port this cycle, or -1.
func pick(policy Policy, sims []*pipeline.Sim, done []bool, next *int) int {
	n := len(sims)
	switch policy {
	case ConfidenceGate:
		// Running threads with no pending low-confidence branch, in
		// rotation order.
		for off := 0; off < n; off++ {
			i := (*next + off) % n
			if !done[i] && sims[i].PendingLowConf() == 0 {
				*next = (i + 1) % n
				return i
			}
		}
	case ICount:
		best, bestOcc := -1, 1<<30
		for off := 0; off < n; off++ {
			i := (*next + off) % n
			if done[i] {
				continue
			}
			if occ := sims[i].PendingBranches(); occ < bestOcc {
				best, bestOcc = i, occ
			}
		}
		if best >= 0 {
			*next = (best + 1) % n
			return best
		}
	}
	// Fallback / round-robin: any running thread.
	for off := 0; off < n; off++ {
		i := (*next + off) % n
		if !done[i] {
			*next = (i + 1) % n
			return i
		}
	}
	return -1
}

// Comparison runs both policies on identical thread sets.
type Comparison struct {
	RoundRobin *Result
	Confidence *Result
}

// Compare runs the two fetch policies on the same configuration.
func Compare(cfg Config, progs []*isa.Program, f policy.Factories) (*Comparison, error) {
	rrCfg := cfg
	rrCfg.Policy = RoundRobin
	rr, err := Run(rrCfg, progs, f)
	if err != nil {
		return nil, err
	}
	cgCfg := cfg
	cgCfg.Policy = ConfidenceGate
	cg, err := Run(cgCfg, progs, f)
	if err != nil {
		return nil, err
	}
	return &Comparison{RoundRobin: rr, Confidence: cg}, nil
}

// Gain returns the relative throughput improvement of the confidence
// policy over round-robin.
func (c *Comparison) Gain() float64 {
	rr := c.RoundRobin.Throughput()
	if rr == 0 {
		return 0
	}
	return c.Confidence.Throughput()/rr - 1
}

// Render prints the comparison.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SMT fetch policy comparison (%d threads)\n", len(c.RoundRobin.PerThread))
	for _, r := range []*Result{c.RoundRobin, c.Confidence} {
		fmt.Fprintf(&b, "%-12s ipc=%.3f committed=%d wasted=%d per-thread=%v\n",
			r.Policy, r.Throughput(), r.Committed, r.WrongPath, r.PerThread)
	}
	fmt.Fprintf(&b, "confidence-policy gain: %+.1f%%\n", c.Gain()*100)
	return b.String()
}
