package smt

import (
	"strings"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/workload"
)

func pcfg() pipeline.Config {
	return pipeline.DefaultConfig()
}

func progs(t *testing.T, names ...string) []*isa.Program {
	t.Helper()
	var out []*isa.Program
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w.Build(1<<30))
	}
	return out
}

func newGshare() bpred.Predictor { return bpred.NewGshare(12) }
func newJRS() conf.Estimator     { return conf.NewJRS(conf.DefaultJRS) }

func jrsFactories() policy.Factories {
	return policy.Factories{Predictor: newGshare, Estimator: newJRS}
}

func TestRoundRobinSharesBandwidth(t *testing.T) {
	cfg := Config{Policy: RoundRobin, CycleBudget: 100_000, Pipeline: pcfg()}
	r, err := Run(cfg, progs(t, "compress", "compress"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerThread) != 2 {
		t.Fatalf("threads = %d", len(r.PerThread))
	}
	// Identical threads under strict rotation commit nearly equally.
	a, b := float64(r.PerThread[0]), float64(r.PerThread[1])
	if a == 0 || b == 0 {
		t.Fatal("a thread made no progress")
	}
	if ratio := a / b; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("identical threads imbalanced: %v", r.PerThread)
	}
	if r.Cycles != cfg.CycleBudget {
		t.Errorf("cycles = %d, want full budget %d", r.Cycles, cfg.CycleBudget)
	}
}

func TestConfidencePolicyBeatsRoundRobin(t *testing.T) {
	// With one predictable and one hostile thread, avoiding the
	// low-confidence thread's wrong-path slots must raise aggregate
	// throughput.
	cfg := Config{CycleBudget: 200_000, Pipeline: pcfg()}
	c, err := Compare(cfg, progs(t, "m88ksim", "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if c.Gain() <= 0 {
		t.Errorf("confidence policy gain %.3f, want > 0 (rr=%.3f conf=%.3f)",
			c.Gain(), c.RoundRobin.Throughput(), c.Confidence.Throughput())
	}
	// It should also waste less fetch on squashed instructions.
	if c.Confidence.WrongPath >= c.RoundRobin.WrongPath {
		t.Errorf("confidence policy wasted %d >= round-robin %d",
			c.Confidence.WrongPath, c.RoundRobin.WrongPath)
	}
	out := c.Render()
	if !strings.Contains(out, "round-robin") || !strings.Contains(out, "gain") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestSingleThreadDegenerate(t *testing.T) {
	cfg := Config{Policy: ConfidenceGate, CycleBudget: 50_000, Pipeline: pcfg()}
	r, err := Run(cfg, progs(t, "perl"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Error("single thread made no progress")
	}
}

func TestFinishedThreadsFreeTheirSlots(t *testing.T) {
	// A short thread paired with a long one: once the short thread
	// halts, the long thread should get every slot. Compare the long
	// thread's progress against a half-budget solo baseline.
	w, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	short := w.Build(50) // halts quickly
	long := w.Build(1 << 30)
	cfg := Config{Policy: RoundRobin, CycleBudget: 100_000, Pipeline: pcfg()}
	r, err := Run(cfg, []*isa.Program{short, long}, jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	// The long thread must commit well over half of what it would get
	// under a permanent 50/50 split.
	half, err := Run(Config{Policy: RoundRobin, CycleBudget: 100_000, Pipeline: pcfg()},
		[]*isa.Program{long, long}, jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r.PerThread[1] <= half.PerThread[0] {
		t.Errorf("long thread got %d with a short partner vs %d in a 50/50 split; slots not freed",
			r.PerThread[1], half.PerThread[0])
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{CycleBudget: 0, Pipeline: pcfg()}).Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Run(Config{CycleBudget: 10, Pipeline: pcfg()}, nil, jrsFactories()); err == nil {
		t.Error("no threads accepted")
	}
}

func TestICountPolicyRuns(t *testing.T) {
	cfg := Config{Policy: ICount, CycleBudget: 100_000, Pipeline: pcfg()}
	r, err := Run(cfg, progs(t, "m88ksim", "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed == 0 {
		t.Fatal("icount made no progress")
	}
	// ICount's occupancy proxy (pending branches) is a weak signal in
	// this in-order model — a freshly squashed thread looks empty and
	// gets granted exactly when its work is least trustworthy — so it
	// may trail round-robin slightly. It must stay in the same range,
	// and the confidence policy must beat it: confidence sees *which*
	// in-flight branches are doomed, not just how many there are.
	rr, err := Run(Config{Policy: RoundRobin, CycleBudget: 100_000, Pipeline: pcfg()},
		progs(t, "m88ksim", "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput() < rr.Throughput()*0.85 {
		t.Errorf("icount throughput %.3f far below round-robin %.3f",
			r.Throughput(), rr.Throughput())
	}
	cg, err := Run(Config{Policy: ConfidenceGate, CycleBudget: 100_000, Pipeline: pcfg()},
		progs(t, "m88ksim", "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if cg.Throughput() <= r.Throughput() {
		t.Errorf("confidence policy %.3f should beat icount %.3f",
			cg.Throughput(), r.Throughput())
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[Policy]string{RoundRobin: "round-robin", ConfidenceGate: "confidence", ICount: "icount"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}
