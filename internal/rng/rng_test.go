package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 seeded with 1234567,
	// cross-checked against the public-domain C implementation.
	sm := NewSplitMix64(1234567)
	got := []uint64{sm.Next(), sm.Next(), sm.Next()}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitmix64 value %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	g := New(7)
	for i := 0; i < 10000; i++ {
		v := g.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	g := New(99)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	g := New(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d uniform samples = %v, want ~0.5", n, mean)
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.28 || rate > 0.32 {
		t.Errorf("Bool(0.3) hit rate = %v, want ~0.3", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		g := New(seed)
		p := g.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroStateRemapped(t *testing.T) {
	// A seed whose splitmix expansion is all-zero is astronomically
	// unlikely, but the constructor must still guard against it; force
	// the condition via the struct directly.
	g := &XorShift128{}
	if g.s0 == 0 && g.s1 == 0 {
		// Uint64 on an all-zero xorshift state returns 0 forever;
		// the constructor is the guard, so verify New never does this.
		h := New(0)
		if h.s0 == 0 && h.s1 == 0 {
			t.Fatal("New(0) produced all-zero state")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	g := New(1)
	for i := 0; i < b.N; i++ {
		_ = g.Uint64()
	}
}
