// Package rng provides small, deterministic pseudo-random number
// generators used by the synthetic workload builders and by tests.
//
// The simulator must be exactly reproducible across runs and platforms, so
// we avoid math/rand (whose algorithm is unspecified across Go versions)
// and implement splitmix64 and xorshift128+ directly. Both are well-known
// public-domain generators with good statistical quality for this purpose.
package rng

// SplitMix64 is a tiny 64-bit generator mainly used to seed other
// generators and to derive independent streams from a single seed.
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// XorShift128 is the xorshift128+ generator: fast, 128 bits of state,
// period 2^128-1. Use New to seed it; an all-zero state is invalid and is
// remapped to a fixed nonzero state.
type XorShift128 struct {
	s0, s1 uint64
}

// New returns an XorShift128 generator derived from seed via splitmix64,
// following the seeding procedure recommended by the xorshift authors.
func New(seed uint64) *XorShift128 {
	sm := NewSplitMix64(seed)
	g := &XorShift128{s0: sm.Next(), s1: sm.Next()}
	if g.s0 == 0 && g.s1 == 0 {
		g.s0 = 0x853c49e6748fea9b
	}
	return g
}

// Uint64 returns the next 64-bit value.
func (g *XorShift128) Uint64() uint64 {
	x, y := g.s0, g.s1
	g.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	g.s1 = x
	return x + y
}

// Uint32 returns the next 32-bit value.
func (g *XorShift128) Uint32() uint32 {
	return uint32(g.Uint64() >> 32)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (g *XorShift128) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(g.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (g *XorShift128) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (g *XorShift128) Bool(p float64) bool {
	return g.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) as a slice,
// using the Fisher-Yates shuffle.
func (g *XorShift128) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
