package policy

import (
	"errors"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
)

func sig(lowConf int) pipeline.FetchSignal {
	return pipeline.FetchSignal{PendingLowConf: lowConf, PendingBranches: lowConf, FetchWidth: 4}
}

func TestGatingWidth(t *testing.T) {
	g := Gating{Threshold: 2}
	if w := g.Width(sig(0)); w != 4 {
		t.Errorf("below threshold: width %d, want 4", w)
	}
	if w := g.Width(sig(1)); w != 4 {
		t.Errorf("just below threshold: width %d, want 4", w)
	}
	if w := g.Width(sig(2)); w != 0 {
		t.Errorf("at threshold: width %d, want 0", w)
	}
	if w := g.Width(sig(7)); w != 0 {
		t.Errorf("above threshold: width %d, want 0", w)
	}
}

func TestThrottleWidth(t *testing.T) {
	th := Throttle{Levels: []int{4, 2, 1}}
	for lc, want := range map[int]int{0: 4, 1: 2, 2: 1, 3: 1, 10: 1} {
		if w := th.Width(sig(lc)); w != want {
			t.Errorf("lowConf=%d: width %d, want %d", lc, w, want)
		}
	}
	// Levels wider than the machine clamp to FetchWidth.
	wide := Throttle{Levels: []int{8}}
	if w := wide.Width(sig(0)); w != 4 {
		t.Errorf("over-wide level: width %d, want clamped 4", w)
	}
}

func TestEagerBoostPatience(t *testing.T) {
	b := &EagerBoost{Threshold: 1, Patience: 2}
	p := b.Fresh()
	// Two over-threshold cycles are tolerated, the third gates.
	for i := 0; i < 2; i++ {
		if w := p.Width(sig(1)); w != 4 {
			t.Fatalf("patience cycle %d: width %d, want 4", i, w)
		}
	}
	if w := p.Width(sig(1)); w != 0 {
		t.Fatalf("patience exhausted: width %d, want 0", w)
	}
	// Confidence recovery resets the window.
	if w := p.Width(sig(0)); w != 4 {
		t.Fatalf("after recovery: width %d, want 4", w)
	}
	if w := p.Width(sig(1)); w != 4 {
		t.Fatalf("window restarted: width %d, want 4", w)
	}
	// Fresh instances do not share the counter.
	if w := b.Fresh().Width(sig(1)); w != 4 {
		t.Fatalf("fresh instance inherited run state: width %d, want 4", w)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{"gate:2", "throttle:4,2,1", "throttle:4,2,1,0", "boost:2,8"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Name() != spec {
			t.Errorf("Parse(%q).Name() = %q, want round-trip", spec, p.Name())
		}
	}
	if p, err := Parse(""); err != nil || p != nil {
		t.Errorf("Parse(\"\") = %v, %v, want nil, nil", p, err)
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"gate", "gate:x", "gate:0", "gate:-1",
		"throttle:", "throttle:0,2", "throttle:17", "throttle:4,-1",
		"boost:2", "boost:2,8,9", "boost:0,4", "boost:2,-1",
		"nonsense", "nonsense:1",
	} {
		if p, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %v, want error", spec, p)
		}
	}
}

func TestFactoriesValidate(t *testing.T) {
	newPred := func() bpred.Predictor { return bpred.NewGshare(8) }
	newEst := func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }

	err := Factories{Estimator: newEst}.Validate()
	var miss *MissingFieldError
	if !errors.As(err, &miss) || miss.Field != "Predictor" {
		t.Errorf("missing predictor: got %v, want MissingFieldError{Predictor}", err)
	}
	err = Factories{Predictor: newPred}.Validate()
	if !errors.As(err, &miss) || miss.Field != "Estimator" {
		t.Errorf("missing estimator: got %v, want MissingFieldError{Estimator}", err)
	}
	f := Factories{Predictor: newPred, Estimator: newEst}
	if err := f.Validate(); err != nil {
		t.Errorf("complete factories: unexpected error %v", err)
	}
	if p := f.NewPolicy(); p != nil {
		t.Errorf("NewPolicy with nil factory: got %v, want nil", p)
	}
	f.Policy = func() pipeline.Policy { return Gating{Threshold: 1} }
	if p := f.NewPolicy(); p == nil || p.Name() != "gate:1" {
		t.Errorf("NewPolicy: got %v, want gate:1", p)
	}
}

// TestPolicyConfigValidate pins the pipeline.Config.Validate path: an
// invalid policy surfaces as a *pipeline.ConfigError naming Policy.
func TestPolicyConfigValidate(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.Policy = Gating{Threshold: 0}
	err := cfg.Validate()
	var ce *pipeline.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Policy" {
		t.Fatalf("invalid policy: got %v, want ConfigError{Policy}", err)
	}
	cfg.Policy = Gating{Threshold: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
}
