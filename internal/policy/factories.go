package policy

import (
	"fmt"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
)

// Factories bundles the per-run component constructors every
// speculation-control driver takes — the one options type behind
// gating.Run/EvaluateSuite, smt.Run/Compare, and eager.Model.Measure,
// replacing those packages' old positional `newPred, newEst` argument
// pairs. Factories (not instances) because predictors, most estimators,
// and stateful policies carry run state: each simulated run gets a
// fresh private set.
type Factories struct {
	// Predictor constructs the branch predictor. Required.
	Predictor func() bpred.Predictor
	// Estimator constructs the confidence estimator the policy keys
	// off (installed as the run's first estimator). Required.
	Estimator func() conf.Estimator
	// Policy constructs the speculation-control policy. Optional: when
	// nil, each driver falls back to its own default (gating builds the
	// paper's Gating policy from its threshold; smt installs none).
	Policy func() pipeline.Policy
}

// MissingFieldError reports a required Factories field left nil,
// naming it.
type MissingFieldError struct {
	// Field is the nil Factories field, e.g. "Predictor".
	Field string
}

func (e *MissingFieldError) Error() string {
	return fmt.Sprintf("policy: Factories.%s is required and nil", e.Field)
}

// Validate checks that the required constructors are present; failures
// are *MissingFieldError values naming the field.
func (f Factories) Validate() error {
	if f.Predictor == nil {
		return &MissingFieldError{"Predictor"}
	}
	if f.Estimator == nil {
		return &MissingFieldError{"Estimator"}
	}
	return nil
}

// NewPolicy constructs the configured policy, or returns nil when none
// was configured.
func (f Factories) NewPolicy() pipeline.Policy {
	if f.Policy == nil {
		return nil
	}
	return f.Policy()
}
