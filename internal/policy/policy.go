// Package policy implements the speculation-control policies the paper
// builds on top of confidence estimation (§5–§6), as
// pipeline.Policy values installed into pipeline.Config:
//
//   - Gating: the paper's pipeline gating — stop fetching outright
//     while the count of in-flight low-confidence branches is at or
//     above a threshold.
//   - Throttle: variable instruction fetch rate — map each
//     low-confidence occupancy level to a fetch width, degrading
//     speculation gradually instead of binarily ("Variable Instruction
//     Fetch Rate to Reduce Control Dependent Penalties", PAPERS.md).
//   - EagerBoost: confidence-boosted eager fallback — speculate
//     eagerly at full rate through low-confidence branches (as an
//     eager-execution machine would fork instead of stall) and fall
//     back to gating only when low-confidence occupancy persists.
//
// The package also defines Factories, the options struct every
// speculation-control driver (internal/gating, internal/smt,
// internal/eager) takes in place of positional constructor arguments,
// and Parse, the canonical spec-string form the CLIs and the cluster
// wire protocol use ("gate:2", "throttle:4,2,1", "boost:2,8").
// Policy.Name() returns exactly that spec string, so names round-trip
// through Parse and are stable enough to hash into experiment cell
// addresses.
package policy

import (
	"fmt"
	"strconv"
	"strings"

	"specctrl/internal/pipeline"
)

// Gating is the paper's pipeline-gating policy: fetch at full rate
// until Threshold or more in-flight branches are low-confidence, then
// gate (fetch nothing) until the count drops. Threshold 1 is the
// paper's most aggressive configuration; higher thresholds gate less.
type Gating struct {
	// Threshold is the low-confidence occupancy at which fetch gates.
	Threshold int
}

// Name returns the canonical spec string, e.g. "gate:2".
func (g Gating) Name() string { return fmt.Sprintf("gate:%d", g.Threshold) }

// Width gates (0) at or above the threshold, full rate below it.
func (g Gating) Width(sig pipeline.FetchSignal) int {
	if sig.PendingLowConf >= g.Threshold {
		return 0
	}
	return sig.FetchWidth
}

// Validate rejects thresholds that could never fire or would gate
// unconditionally.
func (g Gating) Validate() error {
	if g.Threshold < 1 {
		return fmt.Errorf("gating threshold must be >= 1, got %d", g.Threshold)
	}
	return nil
}

// Throttle is the variable-fetch-rate policy: Levels[i] is the fetch
// width while i in-flight branches are low-confidence; occupancies at
// or beyond the last level clamp into it. Levels{4, 2, 1} on a 4-wide
// machine fetches full rate with no low-confidence branch in flight,
// half rate with one, and trickles single instructions beyond that; a
// trailing 0 turns the last level into a full gate.
type Throttle struct {
	// Levels maps low-confidence occupancy to fetch width.
	Levels []int
}

// Name returns the canonical spec string, e.g. "throttle:4,2,1".
func (t Throttle) Name() string {
	parts := make([]string, len(t.Levels))
	for i, w := range t.Levels {
		parts[i] = strconv.Itoa(w)
	}
	return "throttle:" + strings.Join(parts, ",")
}

// Width looks the occupancy up in Levels (clamping past the end).
func (t Throttle) Width(sig pipeline.FetchSignal) int {
	i := sig.PendingLowConf
	if i >= len(t.Levels) {
		i = len(t.Levels) - 1
	}
	w := t.Levels[i]
	if w > sig.FetchWidth {
		w = sig.FetchWidth
	}
	return w
}

// Validate requires at least one level, non-negative widths, and a
// positive zero-occupancy width (a machine that cannot fetch with no
// low-confidence branch in flight never starts).
func (t Throttle) Validate() error {
	if len(t.Levels) == 0 {
		return fmt.Errorf("throttle needs at least one fetch-width level")
	}
	for i, w := range t.Levels {
		if w < 0 || w > 16 {
			return fmt.Errorf("throttle level %d width %d out of range [0,16]", i, w)
		}
	}
	if t.Levels[0] < 1 {
		return fmt.Errorf("throttle zero-occupancy width must be >= 1, got %d", t.Levels[0])
	}
	return nil
}

// EagerBoost is the confidence-boosted eager fallback: the machine
// prefers eager speculation — full-rate fetch straight through
// low-confidence branches, as an eager-execution front end would fork
// down both paths rather than stall — and falls back to gating only
// when low-confidence occupancy has held at or above Threshold for more
// than Patience consecutive fetch-eligible cycles. Every cycle the
// occupancy dips below the threshold, confidence "boosts" the machine
// back to eager mode and the patience window restarts.
//
// EagerBoost carries run state (the consecutive-cycle counter), so it
// implements Fresh: each simulation gets a private instance and a
// shared pipeline.Config value stays safe to reuse across runs.
type EagerBoost struct {
	// Threshold is the low-confidence occupancy that starts (and, held,
	// exhausts) the patience window.
	Threshold int
	// Patience is how many consecutive over-threshold cycles the policy
	// speculates through before gating.
	Patience int

	run int // consecutive over-threshold cycles (per-Sim state)
}

// Name returns the canonical spec string, e.g. "boost:2,8".
func (b *EagerBoost) Name() string { return fmt.Sprintf("boost:%d,%d", b.Threshold, b.Patience) }

// Width fetches at full rate until the patience window exhausts, then
// gates until occupancy drops below the threshold.
func (b *EagerBoost) Width(sig pipeline.FetchSignal) int {
	if sig.PendingLowConf >= b.Threshold {
		b.run++
		if b.run > b.Patience {
			return 0
		}
	} else {
		b.run = 0
	}
	return sig.FetchWidth
}

// Fresh returns a private instance with the patience counter reset.
func (b *EagerBoost) Fresh() pipeline.Policy {
	c := *b
	c.run = 0
	return &c
}

// Validate rejects thresholds that could never fire and negative
// patience.
func (b *EagerBoost) Validate() error {
	if b.Threshold < 1 {
		return fmt.Errorf("boost threshold must be >= 1, got %d", b.Threshold)
	}
	if b.Patience < 0 {
		return fmt.Errorf("boost patience must be >= 0, got %d", b.Patience)
	}
	return nil
}

// Parse builds a policy from its canonical spec string — the same form
// Policy.Name() returns, so names round-trip:
//
//	gate:<threshold>            pipeline gating
//	throttle:<w0>,<w1>,...      variable fetch rate by low-conf count
//	boost:<threshold>,<patience> confidence-boosted eager fallback
//
// The empty spec returns (nil, nil): no policy. The returned policy is
// already validated.
func Parse(spec string) (pipeline.Policy, error) {
	if spec == "" {
		return nil, nil
	}
	kind, arg, _ := strings.Cut(spec, ":")
	var p interface {
		pipeline.Policy
		Validate() error
	}
	switch kind {
	case "gate":
		t, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("policy %q: gate threshold %q is not an integer", spec, arg)
		}
		p = Gating{Threshold: t}
	case "throttle":
		levels, err := parseInts(arg)
		if err != nil {
			return nil, fmt.Errorf("policy %q: %v", spec, err)
		}
		p = Throttle{Levels: levels}
	case "boost":
		args, err := parseInts(arg)
		if err != nil || len(args) != 2 {
			return nil, fmt.Errorf("policy %q: boost takes <threshold>,<patience>", spec)
		}
		p = &EagerBoost{Threshold: args[0], Patience: args[1]}
	default:
		return nil, fmt.Errorf("unknown policy %q (want gate:<t>, throttle:<w0>,<w1>,..., or boost:<t>,<p>)", spec)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("policy %q: %v", spec, err)
	}
	return p, nil
}

// parseInts parses a non-empty comma-separated integer list.
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty integer list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		out[i] = n
	}
	return out, nil
}
