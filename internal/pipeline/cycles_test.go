package pipeline

import (
	"strings"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
	"specctrl/internal/workload"
)

// checkAccounts asserts the cycle-accounting invariant and that the
// run actually exercised the timing model.
func checkAccounts(t *testing.T, st *Stats) {
	t.Helper()
	if err := st.CycleAccounts.CheckInvariant(st.Cycles); err != nil {
		t.Error(err)
	}
	if st.Cycles == 0 {
		t.Fatal("run produced no cycles")
	}
}

// TestCycleAccountingInvariantSuite is the acceptance check: on every
// workload in the suite, committed and wrong-path cycles alike, the
// per-bucket counts sum exactly to Stats.Cycles.
func TestCycleAccountingInvariantSuite(t *testing.T) {
	for _, w := range workload.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := testConfig()
			cfg.MaxCommitted = 40_000
			st, _ := mustRun(t, cfg, w.Build(1<<30), bpred.NewGshare(10),
				conf.NewJRS(conf.DefaultJRS))
			checkAccounts(t, st)
			if st.Squashes == 0 {
				t.Errorf("%s: no squashes — wrong-path accounting untested", w.Name)
			}
			if st.CycleAccounts[BucketUsefulFetch] == 0 {
				t.Errorf("%s: no useful-fetch cycles", w.Name)
			}
			if st.CycleAccounts[BucketMispredictRecovery] == 0 {
				t.Errorf("%s: squashes but no recovery cycles", w.Name)
			}
		})
	}
}

// TestCycleAccountingBucketsPlausible cross-checks buckets against the
// independently collected statistics.
func TestCycleAccountingBucketsPlausible(t *testing.T) {
	cfg := testConfig()
	st, _ := mustRun(t, cfg, loopProgram(20_000), bpred.NewGshare(10))
	checkAccounts(t, st)
	// Every squash costs at least the redirect cycle plus the extra
	// penalty, so recovery cycles are bounded below by squash count.
	if st.CycleAccounts[BucketMispredictRecovery] < st.Squashes {
		t.Errorf("recovery cycles %d < squashes %d",
			st.CycleAccounts[BucketMispredictRecovery], st.Squashes)
	}
	// Useful fetch cycles can't exceed committed instructions (at most
	// FetchWidth commits per useful cycle, at least one).
	if st.CycleAccounts[BucketUsefulFetch] > st.Committed {
		t.Errorf("useful cycles %d > committed instructions %d",
			st.CycleAccounts[BucketUsefulFetch], st.Committed)
	}
	if got := st.CycleAccounts[BucketGated]; got != st.GatedCycles {
		t.Errorf("gated bucket %d != GatedCycles %d", got, st.GatedCycles)
	}
	if so := st.CycleAccounts.SpeculationOverhead(); so <= 0 || so >= 1 {
		t.Errorf("speculation overhead %.3f out of (0,1)", so)
	}
	if !strings.Contains(st.CycleAccounts.Render(), "wrong_path") {
		t.Error("Render missing bucket names")
	}
}

// TestCycleAccountingGated drives fetch gating through Tick and checks
// the gated bucket mirrors GatedCycles under external scheduling.
func TestCycleAccountingGated(t *testing.T) {
	cfg := testConfig()
	sim := MustNew(cfg, loopProgram(5000), bpred.NewGshare(10))
	i := 0
	for {
		done, err := sim.Tick(i%3 != 0) // withhold fetch every third cycle
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		i++
	}
	st := sim.Finish()
	checkAccounts(t, st)
	if st.CycleAccounts[BucketGated] == 0 {
		t.Error("no gated cycles despite withheld fetch")
	}
	if st.CycleAccounts[BucketGated] != st.GatedCycles {
		t.Errorf("gated bucket %d != GatedCycles %d",
			st.CycleAccounts[BucketGated], st.GatedCycles)
	}
}

// TestCycleAccountingIndirect keeps the invariant under the BTB/RAS
// front end, where target mispredictions create their own wrong path.
func TestCycleAccountingIndirect(t *testing.T) {
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.MaxCommitted = 40_000
	cfg.IndirectPrediction = true
	st, _ := mustRun(t, cfg, w.Build(1<<30), bpred.NewGshare(10))
	checkAccounts(t, st)
}

// TestCycleAccountingErrorPath keeps the invariant when a run aborts
// on MaxCycles.
func TestCycleAccountingErrorPath(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 500
	sim := MustNew(cfg, loopProgram(1<<30), bpred.NewGshare(10))
	st, err := sim.Run()
	if err == nil {
		t.Fatal("expected MaxCycles error")
	}
	if ierr := st.CycleAccounts.CheckInvariant(st.Cycles); ierr != nil {
		t.Error(ierr)
	}
}

// TestTracerHook checks the obs.Tracer sees exactly the events
// RecordEvents captures, in the same order.
func TestTracerHook(t *testing.T) {
	var got []obs.BranchEvent
	cfg := testConfig()
	cfg.RecordEvents = true
	cfg.Tracer = &funcTracer{fn: func(e obs.BranchEvent) { got = append(got, e) }}
	st, _ := mustRun(t, cfg, loopProgram(3000), bpred.NewGshare(10),
		conf.NewJRS(conf.DefaultJRS))
	if len(got) != len(st.Events) {
		t.Fatalf("tracer saw %d events, RecordEvents %d", len(got), len(st.Events))
	}
	for i, e := range st.Events {
		want := obs.BranchEvent{PC: e.PC, Pred: e.Pred, Outcome: e.Outcome,
			HighConf: e.HighConf, WrongPath: e.WrongPath, Cycle: e.Cycle,
			ConfMask: e.ConfMask}
		if got[i] != want {
			t.Fatalf("event %d: tracer %+v != recorded %+v", i, got[i], want)
		}
	}
}

type funcTracer struct {
	fn func(obs.BranchEvent)
}

func (f *funcTracer) Branch(e obs.BranchEvent) { f.fn(e) }
func (f *funcTracer) Close() error             { return nil }

// TestLiveMetricsPublish runs with an obs registry attached and checks
// the final published gauges agree with the run statistics, cycle
// buckets and estimator quadrants included.
func TestLiveMetricsPublish(t *testing.T) {
	reg := obs.NewRegistry()
	prog := obs.NewProgress()
	prog.StartRun("looper/gshare", 0)
	cfg := testConfig()
	cfg.Metrics = reg
	cfg.MetricsLabels = obs.Labels{"workload": "looper"}
	cfg.MetricsInterval = 64
	cfg.Progress = prog
	st, _ := mustRun(t, cfg, loopProgram(5000), bpred.NewGshare(10),
		conf.NewJRS(conf.DefaultJRS))

	read := func(name string, labels obs.Labels) float64 {
		t.Helper()
		return reg.Gauge(name, labels).Value()
	}
	base := obs.Labels{"workload": "looper"}
	if got := read("specctrl_sim_cycles", base); uint64(got) != st.Cycles {
		t.Errorf("published cycles %v != %d", got, st.Cycles)
	}
	if got := read("specctrl_sim_committed_instructions", base); uint64(got) != st.Committed {
		t.Errorf("published committed %v != %d", got, st.Committed)
	}
	for b := CycleBucket(0); b < NumCycleBuckets; b++ {
		got := read("specctrl_sim_cycle_bucket", base.With("bucket", b.String()))
		if uint64(got) != st.CycleAccounts[b] {
			t.Errorf("bucket %s published %v != %d", b, got, st.CycleAccounts[b])
		}
	}
	estL := base.With("estimator", st.Confidence[0].Name)
	if got := read("specctrl_sim_conf_pvn", estL); got != st.Confidence[0].CommittedQ.PVN() {
		t.Errorf("published pvn %v != %v", got, st.Confidence[0].CommittedQ.PVN())
	}
	snap := prog.Snapshot()
	if snap.Committed != st.Committed || snap.Cycles != st.Cycles {
		t.Errorf("progress snapshot %+v disagrees with stats", snap)
	}
}
