package pipeline

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/emu"
	"specctrl/internal/isa"
	"specctrl/internal/rng"
	"specctrl/internal/workload"
)

func indirectConfig() Config {
	cfg := testConfig()
	cfg.IndirectPrediction = true
	return cfg
}

// callRetProgram exercises the RAS: nested calls to depth 3 in a loop.
func callRetProgram(iters int) *isa.Program {
	b := isa.NewBuilder("callret")
	b.Li(1, 0).Li(2, int32(iters))
	b.Li(isa.SP, 1<<20)
	b.Label("loop")
	b.Call("f1")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	b.Label("f1")
	b.Addi(isa.SP, isa.SP, -1)
	b.St(isa.RA, isa.SP, 0)
	b.Call("f2")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 1)
	b.Ret()
	b.Label("f2")
	b.Addi(isa.SP, isa.SP, -1)
	b.St(isa.RA, isa.SP, 0)
	b.Call("f3")
	b.Ld(isa.RA, isa.SP, 0)
	b.Addi(isa.SP, isa.SP, 1)
	b.Ret()
	b.Label("f3")
	b.Addi(3, 3, 1)
	b.Ret()
	return b.MustBuild()
}

// dispatchProgram exercises the BTB: an indirect jump through a handler
// table selected by pseudo-random data, the pattern of interpreters with
// computed goto.
func dispatchProgram(iters int) *isa.Program {
	b := isa.NewBuilder("dispatch")
	g := rng.New(21)
	for i := int64(0); i < 256; i++ {
		b.Word(900+i, int64(g.Intn(3)))
	}
	b.Li(1, 0).Li(2, int32(iters))
	// Handler address table at 800..802, filled after labels exist via
	// LiLabel + stores.
	b.LiLabel(5, "h0")
	b.Li(6, 800)
	b.St(5, 6, 0)
	b.LiLabel(5, "h1")
	b.St(5, 6, 1)
	b.LiLabel(5, "h2")
	b.St(5, 6, 2)
	b.Label("loop")
	b.Andi(3, 1, 255)
	b.Addi(3, 3, 900)
	b.Ld(3, 3, 0) // selector 0..2
	b.Addi(3, 3, 800)
	b.Ld(4, 3, 0)   // handler address
	b.Jalr(0, 4, 0) // computed jump (not a return: rd=0, ra!=RA)
	b.Label("h0")
	b.Addi(7, 7, 1)
	b.Jump("join")
	b.Label("h1")
	b.Addi(7, 7, 2)
	b.Jump("join")
	b.Label("h2")
	b.Addi(7, 7, 3)
	b.Label("join")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestIndirectLockstep(t *testing.T) {
	// With target prediction enabled, committed execution must still be
	// bit-identical to the emulator on call/ret and computed-jump code.
	for _, prog := range []*isa.Program{callRetProgram(2000), dispatchProgram(2000)} {
		sim := newSim(indirectConfig(), prog, bpred.NewGshare(10), conf.NewJRS(conf.DefaultJRS))
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		m := emu.NewMachine(prog)
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if st.Committed != m.Executed-1 {
			t.Errorf("%s: committed %d != emu %d-1", prog.Name, st.Committed, m.Executed)
		}
		if sim.Registers() != m.State.Regs {
			t.Errorf("%s: registers diverge", prog.Name)
		}
	}
}

func TestRASPredictsNestedReturns(t *testing.T) {
	sim := MustNew(indirectConfig(), callRetProgram(3000), bpred.NewGshare(10))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Returns == 0 {
		t.Fatal("no returns observed")
	}
	// Balanced nested calls within the RAS depth: essentially every
	// return target predicts correctly, so almost no target squashes.
	rate := float64(st.TargetMisp) / float64(st.Returns)
	if rate > 0.02 {
		t.Errorf("return target misprediction rate %.4f, want ~0", rate)
	}
}

func TestBTBLearnsDispatch(t *testing.T) {
	sim := MustNew(indirectConfig(), dispatchProgram(5000), bpred.NewGshare(10))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.IndirectBr == 0 {
		t.Fatal("no indirect jumps observed")
	}
	// A single-entry BTB per site caches the last target; with three
	// rotating targets it mispredicts often — but far less than always
	// (the selector stream has repeats).
	rate := float64(st.TargetMisp) / float64(st.IndirectBr)
	if rate <= 0.05 || rate >= 0.95 {
		t.Errorf("dispatch target misprediction rate %.3f implausible", rate)
	}
	// Target mispredictions must create wrong-path work.
	if st.WrongPath == 0 {
		t.Error("target mispredictions produced no wrong-path work")
	}
}

func TestIndirectDisabledIsPerfect(t *testing.T) {
	// Without IndirectPrediction, targets are perfect: no target
	// squashes, no Returns/IndirectBr accounting.
	sim := MustNew(testConfig(), dispatchProgram(1000), bpred.NewGshare(10))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TargetMisp != 0 || st.Returns != 0 || st.IndirectBr != 0 {
		t.Errorf("disabled target prediction still recorded: %+v", st)
	}
}

func TestIndirectOnXlisp(t *testing.T) {
	// The recursive workload under target prediction: correct
	// execution, RAS mostly right (recursion depth 8 < RAS depth 16).
	w, err := workload.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1 << 30)
	cfg := indirectConfig()
	cfg.MaxCommitted = 100_000
	sim := newSim(cfg, prog, bpred.NewGshare(12), conf.NewJRS(conf.DefaultJRS))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Returns == 0 {
		t.Fatal("xlisp produced no returns")
	}
	rate := float64(st.TargetMisp) / float64(st.Returns)
	if rate > 0.05 {
		t.Errorf("xlisp return misprediction rate %.4f too high", rate)
	}
}

func TestIndirectFuzzLockstep(t *testing.T) {
	// The random-program lockstep property must hold with target
	// prediction enabled as well (programs use only direct calls, but
	// the RAS machinery is live).
	for seed := uint64(0); seed < 40; seed++ {
		prog := genProgram(seed)
		cfg := indirectConfig()
		cfg.MaxCycles = 2_000_000
		sim := newSim(cfg, prog, bpred.NewMcFarling(8), conf.SatCounters{})
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		m := emu.NewMachine(prog)
		if _, err := m.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if st.Committed != m.Executed-1 || sim.Registers() != m.State.Regs {
			t.Fatalf("seed %d: divergence under indirect prediction", seed)
		}
	}
}
