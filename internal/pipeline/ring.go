package pipeline

// inflightRing is a growable FIFO of in-flight branches backed by a
// power-of-two circular buffer. The per-cycle loop pushes one entry per
// fetched correct-path branch and pops from the front at resolution;
// a plain slice with `pending = pending[1:]` leaks capacity at the
// front and forced an allocation on nearly every push (it was ~99% of
// the simulator's steady-state allocations). The ring reuses its
// backing array forever: after warm-up the hot path performs zero
// allocations (enforced by TestSteadyStateAllocs).
//
// Capacity only grows. The occupancy bound is small and static —
// correct-path branches resolve ResolveDelay cycles after fetch and at
// most FetchWidth are fetched per cycle — so New sizes the ring to that
// bound up front and grow() is effectively dead code kept for safety.
type inflightRing struct {
	buf  []inflight // len(buf) is a power of two
	head int        // index of the oldest entry
	n    int        // occupancy
}

// initRing allocates the backing buffer with capacity for at least min
// entries, rounded up to a power of two.
func (r *inflightRing) init(min int) {
	capacity := 16
	for capacity < min {
		capacity <<= 1
	}
	r.buf = make([]inflight, capacity)
	r.head, r.n = 0, 0
}

// push appends one entry at the tail and returns a pointer to it, so
// the caller writes the (large) inflight struct in place instead of
// copying it through a temporary.
func (r *inflightRing) push() *inflight {
	if r.n == len(r.buf) {
		r.grow()
	}
	slot := &r.buf[(r.head+r.n)&(len(r.buf)-1)]
	r.n++
	return slot
}

// front returns a pointer to the oldest entry; valid only while n > 0
// and until the next push or pop.
func (r *inflightRing) front() *inflight { return &r.buf[r.head] }

// popFront discards the oldest entry. Slots are not zeroed: inflight
// is pointer-free (all-POD), so stale entries cannot retain heap
// objects, and push overwrites every field before the slot is read.
func (r *inflightRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// clear discards every entry (squash path); see popFront for why
// slots stay dirty.
func (r *inflightRing) clear() {
	r.head, r.n = 0, 0
}

// len reports the occupancy.
func (r *inflightRing) len() int { return r.n }

// at returns a pointer to the i-th oldest entry (0 = front).
func (r *inflightRing) at(i int) *inflight {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// grow doubles the backing buffer, re-linearizing the entries.
func (r *inflightRing) grow() {
	next := make([]inflight, len(r.buf)*2)
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = next
	r.head = 0
}
