package pipeline

import (
	"testing"
	"testing/quick"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/emu"
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// genProgram builds a random but guaranteed-terminating program: a chain
// of basic blocks with random ALU/memory bodies, random forward branches,
// and backward branches only as counted loops with small trip counts.
// Every generated program halts within a bounded instruction count.
func genProgram(seed uint64) *isa.Program {
	g := rng.New(seed)
	b := isa.NewBuilder("fuzz")

	// Seed some random data.
	for i := int64(0); i < 64; i++ {
		b.Word(500+i, int64(g.Uint64()%1000))
	}

	// r20..r25 are loop counters; r1..r9 scratch.
	reg := func() isa.Reg { return isa.Reg(1 + g.Intn(9)) }

	blocks := 3 + g.Intn(6)
	for blk := 0; blk < blocks; blk++ {
		label := "blk" + string(rune('A'+blk))
		b.Label(label)

		// Random body.
		for i, n := 0, 1+g.Intn(8); i < n; i++ {
			rd, ra, rb := reg(), reg(), reg()
			switch g.Intn(8) {
			case 0:
				b.Add(rd, ra, rb)
			case 1:
				b.Sub(rd, ra, rb)
			case 2:
				b.Xor(rd, ra, rb)
			case 3:
				b.Muli(rd, ra, int32(g.Intn(7))-3)
			case 4:
				b.Addi(rd, ra, int32(g.Intn(100)))
			case 5:
				// Bounded load from the data region.
				b.Andi(rd, ra, 63)
				b.Addi(rd, rd, 500)
				b.Ld(rd, rd, 0)
			case 6:
				// Bounded store into a scratch region.
				b.Andi(rd, ra, 63)
				b.Addi(rd, rd, 700)
				b.St(rb, rd, 0)
			default:
				b.Slt(rd, ra, rb)
			}
		}

		// A counted self-loop with a random small trip count, using a
		// dedicated counter register so it always terminates.
		if g.Bool(0.5) {
			cnt := isa.Reg(20 + blk%6)
			b.Li(cnt, int32(1+g.Intn(5)))
			loop := label + "loop"
			b.Label(loop)
			b.Add(reg(), reg(), reg())
			b.Addi(cnt, cnt, -1)
			b.Bne(cnt, isa.Zero, loop)
		}

		// A data-dependent forward branch that skips a couple of
		// instructions.
		if g.Bool(0.7) {
			skip := label + "skip"
			b.Blt(reg(), reg(), skip)
			b.Addi(reg(), reg(), 1)
			b.Xor(reg(), reg(), reg())
			b.Label(skip)
		}
	}
	b.Halt()
	return b.MustBuild()
}

// TestFuzzLockstep: for random programs, random predictors and random
// estimators, the pipeline's committed execution must exactly equal the
// functional emulator's — instruction counts, final registers, and the
// scratch memory region — and its statistics must be internally
// consistent. This is the simulator's main correctness property: wrong
// paths may do anything, but must leave no architectural trace.
func TestFuzzLockstep(t *testing.T) {
	f := func(seed uint64, predSel, estSel uint8) bool {
		prog := genProgram(seed)

		var pred bpred.Predictor
		switch predSel % 4 {
		case 0:
			pred = bpred.NewGshare(8)
		case 1:
			pred = bpred.NewMcFarling(8)
		case 2:
			pred = bpred.NewSAg(6, 8)
		default:
			pred = bpred.Static{Taken: seed&1 == 0}
		}
		var est conf.Estimator
		switch estSel % 4 {
		case 0:
			est = conf.NewJRS(conf.JRSConfig{Entries: 64, Bits: 4, Threshold: 3, Enhanced: true})
		case 1:
			est = conf.SatCounters{}
		case 2:
			est = conf.NewDistance(int(estSel % 5))
		default:
			est = conf.NewBoost(conf.SatCounters{}, 2)
		}

		cfg := DefaultConfig()
		cfg.MaxCycles = 2_000_000
		sim := newSim(cfg, prog, pred, est)
		st, err := sim.Run()
		if err != nil {
			t.Logf("seed %d: sim error: %v", seed, err)
			return false
		}

		m := emu.NewMachine(prog)
		if _, err := m.Run(2_000_000); err != nil {
			t.Logf("seed %d: emu error: %v", seed, err)
			return false
		}
		if st.Committed != m.Executed-1 { // emulator counts HALT
			t.Logf("seed %d: committed %d != emu %d-1", seed, st.Committed, m.Executed)
			return false
		}
		if sim.Registers() != m.State.Regs {
			t.Logf("seed %d: registers diverge", seed)
			return false
		}
		for addr := int64(700); addr < 764; addr++ {
			if sim.Memory().Read(addr) != m.Mem.Read(addr) {
				t.Logf("seed %d: memory diverges at %d", seed, addr)
				return false
			}
		}
		if st.CommittedBr != m.CondBranches {
			t.Logf("seed %d: branches %d != %d", seed, st.CommittedBr, m.CondBranches)
			return false
		}
		// Internal consistency.
		if st.CommittedQ.Total() != st.CommittedBr || st.AllQ.Total() != st.AllBr {
			t.Logf("seed %d: quadrant totals inconsistent", seed)
			return false
		}
		if st.Squashes != st.CommittedQ.Incorrect() {
			t.Logf("seed %d: squashes %d != mispredictions %d",
				seed, st.Squashes, st.CommittedQ.Incorrect())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFuzzGatingLockstep: gating (withholding fetch on arbitrary cycles)
// must never change architectural results either.
func TestFuzzGatingLockstep(t *testing.T) {
	f := func(seed uint64, gateMask uint8) bool {
		prog := genProgram(seed)
		cfg := DefaultConfig()
		cfg.MaxCycles = 2_000_000
		sim := newSim(cfg, prog, bpred.NewGshare(8), conf.SatCounters{})
		cycle := 0
		for {
			// Withhold fetch on a pseudo-random subset of cycles.
			allow := (uint8(cycle)^gateMask)&3 != 0
			cycle++
			done, err := sim.Tick(allow)
			if err != nil {
				return false
			}
			if done {
				break
			}
		}
		st := sim.Finish()

		m := emu.NewMachine(prog)
		if _, err := m.Run(2_000_000); err != nil {
			return false
		}
		return st.Committed == m.Executed-1 && sim.Registers() == m.State.Regs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFuzzDecodeNeverPanics: arbitrary 64-bit words either decode into a
// valid instruction or return an error — never panic.
func TestFuzzDecodeNeverPanics(t *testing.T) {
	f := func(w uint64) bool {
		in, err := isa.Decode(w)
		if err != nil {
			return true
		}
		// Valid decodes must re-encode to the same word.
		return isa.Encode(in) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// genCallProgram builds a random program with a two-level call structure
// (balanced call/ret with RA spills) plus the random bodies of
// genProgram's style, to fuzz the RAS/indirect machinery.
func genCallProgram(seed uint64) *isa.Program {
	g := rng.New(seed)
	b := isa.NewBuilder("fuzzcall")
	for i := int64(0); i < 64; i++ {
		b.Word(500+i, int64(g.Uint64()%1000))
	}
	reg := func() isa.Reg { return isa.Reg(1 + g.Intn(9)) }
	body := func(n int) {
		for i := 0; i < n; i++ {
			rd, ra, rb := reg(), reg(), reg()
			switch g.Intn(5) {
			case 0:
				b.Add(rd, ra, rb)
			case 1:
				b.Xor(rd, ra, rb)
			case 2:
				b.Andi(rd, ra, 63)
				b.Addi(rd, rd, 500)
				b.Ld(rd, rd, 0)
			case 3:
				b.Slt(rd, ra, rb)
			default:
				b.Addi(rd, ra, int32(g.Intn(50)))
			}
		}
	}

	funcs := 2 + g.Intn(3)
	b.Li(isa.SP, 1<<20)
	// r20/r21 hold the loop counter and limit: the random bodies only
	// write r1..r9, so the outer loop always terminates.
	b.Li(20, 0)
	b.Li(21, int32(20+g.Intn(40)))
	b.Label("main")
	for f := 0; f < funcs; f++ {
		if g.Bool(0.7) {
			b.Call("fn" + string(rune('0'+f)))
		}
	}
	// A data-dependent branch in main.
	b.Blt(reg(), reg(), "skipm")
	body(2)
	b.Label("skipm")
	b.Addi(20, 20, 1)
	b.Blt(20, 21, "main")
	b.Halt()

	for f := 0; f < funcs; f++ {
		b.Label("fn" + string(rune('0'+f)))
		if f+1 < funcs && g.Bool(0.5) {
			// Nested call: spill RA.
			b.Addi(isa.SP, isa.SP, -1)
			b.St(isa.RA, isa.SP, 0)
			body(1 + g.Intn(4))
			b.Call("fn" + string(rune('0'+f+1)))
			b.Ld(isa.RA, isa.SP, 0)
			b.Addi(isa.SP, isa.SP, 1)
		} else {
			body(1 + g.Intn(4))
			if g.Bool(0.5) {
				b.Blt(reg(), reg(), "fs"+string(rune('0'+f)))
				body(1)
				b.Label("fs" + string(rune('0'+f)))
			}
		}
		b.Ret()
	}
	return b.MustBuild()
}

// TestFuzzCallLockstepIndirect: random call/ret programs under the
// BTB/RAS front end must stay architecturally identical to the emulator.
func TestFuzzCallLockstepIndirect(t *testing.T) {
	f := func(seed uint64) bool {
		prog := genCallProgram(seed)
		cfg := DefaultConfig()
		cfg.IndirectPrediction = true
		cfg.RASDepth = 4 // small stack: force wraps and corruption repair
		cfg.MaxCycles = 2_000_000
		sim := newSim(cfg, prog, bpred.NewGshare(8), conf.NewJRS(conf.DefaultJRS))
		st, err := sim.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		m := emu.NewMachine(prog)
		if _, err := m.Run(2_000_000); err != nil {
			t.Logf("seed %d: emu: %v", seed, err)
			return false
		}
		if st.Committed != m.Executed-1 || sim.Registers() != m.State.Regs {
			t.Logf("seed %d: architectural divergence", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
