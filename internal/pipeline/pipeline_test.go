package pipeline

import (
	"errors"
	"strings"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/cache"
	"specctrl/internal/conf"
	"specctrl/internal/emu"
	"specctrl/internal/isa"
	"specctrl/internal/rng"
)

// testConfig is DefaultConfig with a cycle safety net for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	return cfg
}

// loopProgram: a counted loop with a data-dependent inner branch driven by
// a pseudo-random table, so there are both predictable and unpredictable
// branches.
func loopProgram(iters int) *isa.Program {
	b := isa.NewBuilder("looper")
	g := rng.New(42)
	for i := int64(0); i < 256; i++ {
		b.Word(1000+i, int64(g.Intn(2)))
	}
	b.Li(1, 0)            // i
	b.Li(2, int32(iters)) // limit
	b.Li(3, 0)            // sum
	b.Li(4, 1000)         // table base
	b.Label("loop")
	b.Andi(5, 1, 255) // idx = i & 255
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)              // random bit
	b.Beq(6, isa.Zero, "skip") // data-dependent branch
	b.Addi(3, 3, 1)
	b.Label("skip")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop") // predictable loop branch
	b.Halt()
	return b.MustBuild()
}

// biasedProgram: every branch is taken, so a trained predictor never
// mispredicts after warmup.
func biasedProgram(iters int) *isa.Program {
	b := isa.NewBuilder("biased")
	b.Li(1, 0).Li(2, int32(iters))
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustBuild()
}

// newSim builds a Sim with the given estimator set, panicking on
// configuration errors (test configurations are statically good).
func newSim(cfg Config, p *isa.Program, pred bpred.Predictor, ests ...conf.Estimator) *Sim {
	cfg.Estimators = ests
	return MustNew(cfg, p, pred)
}

func mustRun(t *testing.T, cfg Config, p *isa.Program, pred bpred.Predictor, ests ...conf.Estimator) (*Stats, *Sim) {
	t.Helper()
	sim := newSim(cfg, p, pred, ests...)
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, sim
}

func TestLockstepOracle(t *testing.T) {
	// The pipeline's committed execution must be bit-identical to the
	// functional emulator: same instruction count, same final registers,
	// same memory effects — wrong-path excursions must leave no trace.
	p := loopProgram(2000)
	st, sim := mustRun(t, testConfig(), p, bpred.NewGshare(10), conf.NewJRS(conf.DefaultJRS))

	m := emu.NewMachine(p)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// The emulator counts the final HALT; the pipeline stops fetching at
	// it without counting.
	if st.Committed != m.Executed-1 {
		t.Errorf("committed = %d, emulator executed-1 = %d", st.Committed, m.Executed-1)
	}
	if sim.Registers() != m.State.Regs {
		t.Errorf("final registers diverge:\npipeline: %v\nemulator: %v",
			sim.Registers(), m.State.Regs)
	}
	// Spot-check memory: the data table region must be untouched, and
	// wrong-path stores must have been rolled back everywhere.
	for addr := int64(1000); addr < 1256; addr++ {
		if sim.Memory().Read(addr) != m.Mem.Read(addr) {
			t.Fatalf("memory diverges at %d", addr)
		}
	}
	if st.Squashes == 0 {
		t.Error("expected some mispredictions in the random-branch loop")
	}
	if st.WrongPath == 0 {
		t.Error("expected wrong-path instructions")
	}
}

func TestCommittedBranchCountMatchesEmulator(t *testing.T) {
	p := loopProgram(500)
	st, _ := mustRun(t, testConfig(), p, bpred.NewGshare(10))
	m := emu.NewMachine(p)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if st.CommittedBr != m.CondBranches {
		t.Errorf("committed branches = %d, emulator = %d", st.CommittedBr, m.CondBranches)
	}
}

func TestPredictableLoopHasFewMispredictions(t *testing.T) {
	st, _ := mustRun(t, testConfig(), biasedProgram(5000), bpred.NewGshare(12))
	if r := st.MispredictRate(); r > 0.02 {
		t.Errorf("mispredict rate on always-taken loop = %v, want < 2%%", r)
	}
	if st.SpeculationRatio() > 1.05 {
		t.Errorf("speculation ratio %v too high for a predictable program", st.SpeculationRatio())
	}
}

func TestRandomBranchesCauseWrongPathWork(t *testing.T) {
	st, _ := mustRun(t, testConfig(), loopProgram(5000), bpred.NewGshare(12))
	if st.MispredictRate() < 0.02 {
		t.Errorf("mispredict rate %v suspiciously low for random branches", st.MispredictRate())
	}
	ratio := st.SpeculationRatio()
	if ratio <= 1.0 {
		t.Errorf("speculation ratio = %v, want > 1", ratio)
	}
	if st.AllBr <= st.CommittedBr {
		t.Error("wrong-path branches should make AllBr > CommittedBr")
	}
}

func TestSquashCountMatchesCommittedMispredictions(t *testing.T) {
	st, _ := mustRun(t, testConfig(), loopProgram(3000), bpred.NewGshare(10))
	if st.Squashes != st.CommittedQ.Incorrect() {
		t.Errorf("squashes = %d, committed mispredictions = %d",
			st.Squashes, st.CommittedQ.Incorrect())
	}
}

func TestQuadrantTotalsMatchBranchCounts(t *testing.T) {
	st, _ := mustRun(t, testConfig(), loopProgram(2000), bpred.NewGshare(10),
		conf.NewJRS(conf.DefaultJRS))
	if st.CommittedQ.Total() != st.CommittedBr {
		t.Errorf("committed quadrant total %d != committed branches %d",
			st.CommittedQ.Total(), st.CommittedBr)
	}
	if st.AllQ.Total() != st.AllBr {
		t.Errorf("all quadrant total %d != all branches %d", st.AllQ.Total(), st.AllBr)
	}
}

func TestEventTraceConsistency(t *testing.T) {
	cfg := testConfig()
	cfg.RecordEvents = true
	st, _ := mustRun(t, cfg, loopProgram(1000), bpred.NewGshare(10),
		conf.NewJRS(conf.DefaultJRS))
	if uint64(len(st.Events)) != st.AllBr {
		t.Fatalf("event count %d != AllBr %d", len(st.Events), st.AllBr)
	}
	var committed, wrong uint64
	var q uint64
	for _, e := range st.Events {
		if e.WrongPath {
			wrong++
		} else {
			committed++
		}
		if e.Correct() == (e.Pred == e.Outcome) {
			q++
		}
	}
	if committed != st.CommittedBr {
		t.Errorf("committed events %d != CommittedBr %d", committed, st.CommittedBr)
	}
	if wrong != st.AllBr-st.CommittedBr {
		t.Errorf("wrong-path events %d != %d", wrong, st.AllBr-st.CommittedBr)
	}
}

// clusterProgram interleaves runs of correlated data-dependent branches
// (all keyed to one random word) with long predictable stretches, so hard
// branches — and therefore mispredictions — arrive in bursts.
func clusterProgram(iters int) *isa.Program {
	b := isa.NewBuilder("cluster")
	g := rng.New(7)
	for i := int64(0); i < 512; i++ {
		b.Word(2000+i, int64(g.Uint64()&0xff))
	}
	b.Li(1, 0)            // i
	b.Li(2, int32(iters)) // limit
	b.Li(4, 2000)         // table base
	b.Label("loop")
	b.Andi(5, 1, 511)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0) // random byte
	// Three correlated hard branches on different bits of the byte.
	b.Andi(7, 6, 1)
	b.Beq(7, isa.Zero, "s1")
	b.Addi(3, 3, 1)
	b.Label("s1")
	b.Andi(7, 6, 2)
	b.Beq(7, isa.Zero, "s2")
	b.Addi(3, 3, 2)
	b.Label("s2")
	b.Andi(7, 6, 4)
	b.Beq(7, isa.Zero, "s3")
	b.Addi(3, 3, 4)
	b.Label("s3")
	// A predictable stretch: 8 always-taken inner-loop iterations.
	b.Li(8, 0)
	b.Label("inner")
	b.Addi(8, 8, 1)
	b.Slti(9, 8, 8)
	b.Bne(9, isa.Zero, "inner")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestMispredictionClustering(t *testing.T) {
	// The paper's §4.1 claim: branches fetched shortly after a
	// misprediction are more likely to be mispredicted than average,
	// on a workload whose hard branches arrive in bursts.
	st, _ := mustRun(t, testConfig(), clusterProgram(5000), bpred.NewGshare(12))
	avg := st.AllQ.MispredictRate()
	near := (st.PreciseAll.Rate(1) + st.PreciseAll.Rate(2)) / 2
	if near <= avg {
		t.Errorf("misprediction rate near distance 1-2 (%v) should exceed average (%v)", near, avg)
	}
}

func TestPerceivedDistanceSkewedRight(t *testing.T) {
	// Perceived distances reset later than precise ones, so short
	// perceived distances should be rarer than short precise distances.
	st, _ := mustRun(t, testConfig(), loopProgram(20000), bpred.NewGshare(12))
	var precShort, percShort uint64
	for d := 0; d < 3; d++ {
		precShort += st.PreciseAll.Total[d]
		percShort += st.PerceivedAll.Total[d]
	}
	if percShort > precShort {
		t.Errorf("perceived short distances (%d) exceed precise (%d); skew is wrong",
			percShort, precShort)
	}
}

func TestSiteStatsCollected(t *testing.T) {
	cfg := testConfig()
	cfg.CollectSiteStats = true
	st, _ := mustRun(t, cfg, loopProgram(1000), bpred.NewGshare(10))
	if len(st.Sites) == 0 {
		t.Fatal("no site stats collected")
	}
	var total uint64
	for _, s := range st.Sites {
		total += s.Total
		if s.Correct > s.Total {
			t.Fatal("site correct > total")
		}
	}
	if total != st.CommittedBr {
		t.Errorf("site totals %d != committed branches %d", total, st.CommittedBr)
	}
}

func TestMaxCommittedStopsRun(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCommitted = 1000
	st, _ := mustRun(t, cfg, loopProgram(1_000_000), bpred.NewGshare(10))
	if st.Committed < 1000 || st.Committed > 1000+uint64(cfg.FetchWidth) {
		t.Errorf("committed = %d, want ~1000", st.Committed)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("l").Jump("l")
	cfg := testConfig()
	cfg.MaxCycles = 1000
	sim := MustNew(cfg, b.MustBuild(), bpred.NewGshare(8))
	if _, err := sim.Run(); err == nil {
		t.Error("expected MaxCycles error on non-terminating program")
	}
}

func TestIPCReasonable(t *testing.T) {
	st, _ := mustRun(t, testConfig(), biasedProgram(10000), bpred.NewGshare(12))
	ipc := st.IPC()
	if ipc < 0.3 || ipc > 4.0 {
		t.Errorf("IPC = %v, outside plausible range", ipc)
	}
}

func TestMispredictionPenaltyCostsCycles(t *testing.T) {
	// Same committed work, worse predictor => more cycles.
	good, _ := mustRun(t, testConfig(), loopProgram(5000), bpred.NewGshare(12))
	bad, _ := mustRun(t, testConfig(), loopProgram(5000), bpred.Static{Taken: false})
	if bad.Cycles <= good.Cycles {
		t.Errorf("always-not-taken (%d cycles) should be slower than gshare (%d cycles)",
			bad.Cycles, good.Cycles)
	}
	if bad.Committed != good.Committed {
		t.Errorf("committed work differs: %d vs %d", bad.Committed, good.Committed)
	}
}

func TestCacheStatsPopulated(t *testing.T) {
	st, _ := mustRun(t, testConfig(), loopProgram(1000), bpred.NewGshare(10))
	if st.ICacheHits+st.ICacheMisses == 0 {
		t.Error("no icache accesses recorded")
	}
	if st.DCacheHits+st.DCacheMisses == 0 {
		t.Error("no dcache accesses recorded")
	}
}

func TestDistanceEstimatorIntegration(t *testing.T) {
	// The Distance estimator must see every fetched branch; its
	// committed-quadrant totals must match.
	st, _ := mustRun(t, testConfig(), loopProgram(2000), bpred.NewGshare(10),
		conf.NewDistance(3))
	if st.CommittedQ.Total() != st.CommittedBr {
		t.Error("distance estimator integration lost events")
	}
	// Both confidence classes should appear on this workload.
	if st.CommittedQ.Chc+st.CommittedQ.Ihc == 0 {
		t.Error("distance estimator never said high confidence")
	}
	if st.CommittedQ.Clc+st.CommittedQ.Ilc == 0 {
		t.Error("distance estimator never said low confidence")
	}
}

func TestAlwaysLCPVNEqualsMispredictRate(t *testing.T) {
	// The paper's Figure 4 observation: when every branch is low
	// confidence, PVN equals the misprediction rate.
	st, _ := mustRun(t, testConfig(), loopProgram(5000), bpred.NewGshare(10),
		conf.Always{High: false})
	pvn := st.CommittedQ.PVN()
	mr := st.MispredictRate()
	if diff := pvn - mr; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("PVN (%v) != mispredict rate (%v) under AlwaysLC", pvn, mr)
	}
}

func TestWrongPathHaltIdlesUntilRecovery(t *testing.T) {
	// A program whose wrong path falls into HALT: a mispredicted branch
	// right before the end of the program.
	b := isa.NewBuilder("edge")
	b.Li(1, 0).Li(2, 100)
	b.Label("loop")
	b.Addi(1, 1, 1)
	// This branch is taken 99 times then falls through; the predictor
	// will mispredict the exit, sending fetch into HALT's vicinity.
	b.Blt(1, 2, "loop")
	b.Li(3, 7)
	b.Halt()
	st, sim := mustRun(t, testConfig(), b.MustBuild(), bpred.NewGshare(8))
	if sim.Registers()[3] != 7 {
		t.Error("instruction after mispredicted exit did not commit")
	}
	if st.Committed == 0 {
		t.Error("nothing committed")
	}
}

func TestValidateConfig(t *testing.T) {
	bad := []Config{
		{FetchWidth: 0, ResolveDelay: 5, ICache: cache.DefaultL1I, DCache: cache.DefaultL1D},
		{FetchWidth: 4, ResolveDelay: 0, ICache: cache.DefaultL1I, DCache: cache.DefaultL1D},
		{FetchWidth: 4, ResolveDelay: 5, ExtraMispredictPenalty: -1, ICache: cache.DefaultL1I, DCache: cache.DefaultL1D},
		{FetchWidth: 4, ResolveDelay: 5}, // zero caches
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Stats {
		st, _ := mustRun(t, testConfig(), loopProgram(2000), bpred.NewGshare(10),
			conf.NewJRS(conf.DefaultJRS))
		return st
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Cycles != b.Cycles ||
		a.CommittedQ != b.CommittedQ || a.AllQ != b.AllQ {
		t.Error("simulation is not deterministic")
	}
}

func BenchmarkPipelineGshareJRS(b *testing.B) {
	p := loopProgram(1_000_000_000) // effectively unbounded; MaxCommitted caps
	cfg := DefaultConfig()
	cfg.MaxCommitted = uint64(b.N)
	cfg.MaxCycles = uint64(b.N)*10 + 10_000
	sim := newSim(cfg, p, bpred.NewGshare(12), conf.NewJRS(conf.DefaultJRS))
	b.ResetTimer()
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestMultiEstimatorFanOut(t *testing.T) {
	// A run with many estimators must give each estimator exactly the
	// quadrants it would get alone: estimators observe without
	// influencing the run.
	p := loopProgram(2000)
	mk := func() []conf.Estimator {
		return []conf.Estimator{
			conf.NewJRS(conf.DefaultJRS),
			conf.SatCounters{},
			conf.NewDistance(3),
			conf.Always{High: false},
		}
	}
	multi, _ := mustRun(t, testConfig(), p, bpred.NewGshare(10), mk()...)
	for i, e := range mk() {
		solo, _ := mustRun(t, testConfig(), p, bpred.NewGshare(10), e)
		if multi.Confidence[i].CommittedQ != solo.Confidence[0].CommittedQ {
			t.Errorf("estimator %d (%s): multi %+v != solo %+v", i,
				multi.Confidence[i].Name, multi.Confidence[i].CommittedQ,
				solo.Confidence[0].CommittedQ)
		}
		if multi.Confidence[i].AllQ != solo.Confidence[0].AllQ {
			t.Errorf("estimator %d (%s): AllQ differs", i, multi.Confidence[i].Name)
		}
	}
	// The first estimator's quadrants mirror into the top-level fields.
	if multi.CommittedQ != multi.Confidence[0].CommittedQ {
		t.Error("CommittedQ does not mirror estimator 0")
	}
}

func TestEventConfMask(t *testing.T) {
	cfg := testConfig()
	cfg.RecordEvents = true
	st, _ := mustRun(t, cfg, loopProgram(500), bpred.NewGshare(10),
		conf.Always{High: true}, conf.Always{High: false})
	for _, e := range st.Events {
		if e.ConfMask&1 == 0 {
			t.Fatal("estimator 0 (AlwaysHC) bit not set")
		}
		if e.ConfMask&2 != 0 {
			t.Fatal("estimator 1 (AlwaysLC) bit set")
		}
		if !e.HighConf {
			t.Fatal("HighConf should mirror estimator 0")
		}
	}
}

func TestTooManyEstimatorsError(t *testing.T) {
	ests := make([]conf.Estimator, 65)
	for i := range ests {
		ests[i] = conf.Always{High: true}
	}
	cfg := testConfig()
	cfg.RecordEvents = true
	cfg.Estimators = ests
	_, err := New(cfg, loopProgram(1), bpred.NewGshare(8))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("New accepted 65 estimators with RecordEvents (err=%v)", err)
	}
	if ce.Field != "Estimators" {
		t.Errorf("ConfigError.Field = %q, want Estimators", ce.Field)
	}
}

func TestNilEstimatorError(t *testing.T) {
	cfg := testConfig()
	cfg.Estimators = []conf.Estimator{conf.Always{High: true}, nil}
	_, err := New(cfg, loopProgram(1), bpred.NewGshare(8))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("New accepted a nil estimator (err=%v)", err)
	}
	if ce.Field != "Estimators[1]" {
		t.Errorf("ConfigError.Field = %q, want Estimators[1]", ce.Field)
	}
}

func TestConfigErrorNamesField(t *testing.T) {
	cfg := testConfig()
	cfg.FetchWidth = 0
	_, err := New(cfg, loopProgram(1), bpred.NewGshare(8))
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("New accepted FetchWidth=0 (err=%v)", err)
	}
	if ce.Field != "FetchWidth" {
		t.Errorf("ConfigError.Field = %q, want FetchWidth", ce.Field)
	}
	if !strings.Contains(ce.Error(), "FetchWidth") {
		t.Errorf("ConfigError.Error() = %q does not name the field", ce.Error())
	}
	bad := testConfig()
	bad.ICache.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a zero-assoc I-cache")
	} else {
		var ice *ConfigError
		if !errors.As(err, &ice) || ice.Field != "ICache" {
			t.Errorf("ICache validation error = %v, want ConfigError{Field: ICache}", err)
		}
	}
}
