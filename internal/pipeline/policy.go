package pipeline

// FetchSignal is the live confidence state a speculation-control policy
// decides from, snapshotted at the top of each Tick — before that
// cycle's branch resolutions, so a policy sees exactly what an external
// per-cycle driver polling PendingLowConf before Tick would have seen.
// Populating it costs one walk of the pending ring (bounded by
// (ResolveDelay+1)*FetchWidth entries), the same price the old external
// gating loop paid.
type FetchSignal struct {
	// Cycle is the cycle about to execute (1-based).
	Cycle uint64
	// PendingLowConf is the number of in-flight conditional branches
	// whose first-estimator confidence estimate was low — the paper's
	// gating occupancy count. Always 0 when Config.Estimators is empty.
	PendingLowConf int
	// PendingBranches is the total number of in-flight conditional
	// branches.
	PendingBranches int
	// FetchWidth is Config.FetchWidth, the machine's maximum fetch rate.
	FetchWidth int
}

// Policy decides the front end's per-cycle fetch action from live
// confidence state: full rate, a throttled rate, or a full gate. A
// policy is installed through Config.Policy and consulted once per Tick
// whose external fetchAllowed is true; nil (no policy) is the zero-cost
// always-full-rate fast path.
//
// Width returns the number of instructions the front end may fetch this
// cycle. Zero (or negative) gates the cycle entirely — accounted
// exactly like an external scheduler's fetchAllowed=false
// (Stats.GatedCycles, BucketGated); values above sig.FetchWidth clamp
// to it (the pending ring is sized for FetchWidth, so a policy cannot
// over-fetch). Partial widths model variable instruction fetch rate:
// the fetch group stops after that many slots.
//
// Name returns the policy's canonical spec string (e.g. "gate:2"); it
// is hashed into experiments cell addresses, so two policies with
// different behaviour must never share a name.
//
// A stateful policy additionally implements Fresh() Policy to hand each
// simulation a private instance, and may implement Validate() error to
// participate in Config.Validate.
type Policy interface {
	Name() string
	Width(sig FetchSignal) int
}

// policyFor returns the per-Sim policy instance for cfg: the installed
// policy itself, or a fresh private copy when it carries run state.
func policyFor(cfg Config) Policy {
	if cfg.Policy == nil {
		return nil
	}
	if f, ok := cfg.Policy.(interface{ Fresh() Policy }); ok {
		return f.Fresh()
	}
	return cfg.Policy
}
