// Package pipeline implements the execution-driven pipeline simulator the
// experiments run on — the repository's substitute for the paper's
// extended SimpleScalar sim-outorder (§3.1).
//
// # Model
//
// The simulator fetches down *predicted* paths: after a mispredicted
// branch it keeps fetching and functionally executing wrong-path
// instructions on forked architectural state until the branch resolves,
// then squashes the wrong path, rolls the state back, and resumes at the
// correct target after a recovery penalty. This wrong-path awareness is
// what the paper calls "pipeline-level simulation" and is essential to
// its observations: the simulator knows the outcome of every branch at
// decode — even branches that never commit — so it can record prediction
// and confidence events for committed and uncommitted branches alike, and
// both the precise and the perceived misprediction distance.
//
// Timing is approximate but mechanistic: a parameterized fetch width, an
// L1 I-cache probed at fetch and an L1 D-cache probed by loads/stores
// (misses stall the front end), a fixed fetch-to-resolve depth for
// branches, and the paper's extra misprediction recovery penalty
// (3 cycles by default) on top of the natural refill delay.
//
// # Cycle accounting
//
// Every simulated cycle is attributed to exactly one CycleBucket —
// useful fetch, I-cache stall, D-cache stall, branch-resolve wait,
// misprediction recovery, wrong-path work, or gated — and the
// per-bucket counts in Stats.CycleAccounts sum exactly to Stats.Cycles
// on every run (CycleAccounts.CheckInvariant). See the CycleBucket
// documentation in cycles.go for the full attribution taxonomy. The
// simulator can also stream live metrics into an obs.Registry and
// branch events into an obs.Tracer (Config.Metrics, Config.Tracer);
// both are free when unset beyond a nil-check.
//
// Like SimpleScalar, the simulator exploits oracle knowledge for
// structure, not for policy: predictions and confidence estimates are
// made by the real mechanisms under test; the oracle outcome only decides
// when the machine will discover a misprediction.
//
// # Event ordering contract
//
// For every fetched conditional branch, in fetch order:
// Predictor.Predict then Estimator.Estimate. For every branch that
// reaches resolution (equivalently, in this in-order-resolve model, every
// committed branch), in program order: Predictor.Resolve,
// Estimator.Resolve, and Predictor.Recover if mispredicted. Squashed
// branches are never resolved, matching hardware where the enclosing
// squash kills them first.
package pipeline

import (
	"fmt"

	"specctrl/internal/bpred"
	"specctrl/internal/btb"
	"specctrl/internal/cache"
	"specctrl/internal/conf"
	"specctrl/internal/emu"
	"specctrl/internal/isa"
	"specctrl/internal/mem"
	"specctrl/internal/metrics"
	"specctrl/internal/obs"
)

// Config parameterizes the simulator.
type Config struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// ResolveDelay is the number of cycles between fetching a
	// conditional branch and resolving it (the fetch-to-execute depth
	// of the 5-stage pipe).
	ResolveDelay int
	// ExtraMispredictPenalty is added on top of the natural redirect
	// delay when recovering from a misprediction; the paper uses 3.
	ExtraMispredictPenalty int
	// ICache and DCache configure the L1 caches.
	ICache, DCache cache.Config
	// RecordEvents retains the full per-branch event trace in
	// Stats.Events (costs memory on long runs).
	RecordEvents bool
	// CollectSiteStats accumulates per-branch-site prediction accuracy
	// in Stats.Sites (used by the static estimator's profiling pass).
	CollectSiteStats bool
	// MaxCommitted stops the run after this many committed
	// instructions (0 = run to HALT).
	MaxCommitted uint64
	// MaxCycles aborts the run after this many cycles (0 = no limit);
	// a safety net against non-terminating programs.
	MaxCycles uint64
	// IndirectPrediction enables the BTB and return-address-stack
	// front end: JALR targets are predicted (RAS for returns, BTB for
	// other indirect jumps) and target mispredictions create wrong-path
	// work like direction mispredictions do. Disabled, targets are
	// assumed perfect — the paper's conditional-branch-only setup.
	IndirectPrediction bool
	// BTBEntries/BTBAssoc/RASDepth size the target predictors
	// (defaults 512 / 4 / 16 when zero).
	BTBEntries, BTBAssoc, RASDepth int

	// Estimators is the set of confidence estimators observing the run
	// (zero estimators disables confidence bookkeeping). The set is part
	// of the validated configuration — estimators must be non-nil, at
	// most 1024 are supported, and at most 64 with RecordEvents (events
	// carry one confidence bit per estimator) — and
	// experiments.CellAddress hashes the estimator names into a cell's
	// content address along with every other field here.
	Estimators []conf.Estimator

	// Policy, when non-nil, is the speculation-control policy deciding
	// the per-cycle fetch action (full rate, throttled, or gated) from
	// live confidence state — see the Policy interface. Nil is the
	// always-full-rate fast path: the hot loop pays a single nil-check
	// and no allocation. Like Estimators, the policy's Name() is part of
	// a cell's content address in experiments.CellAddress.
	Policy Policy

	// Tracer, when non-nil, receives one structured event per fetched
	// conditional branch (the obs hook behind internal/trace's binary
	// writer and obs.JSONL). Nil is the null sink: the hot path pays a
	// single nil-check.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives live gauges (cycles, IPC,
	// per-bucket cycle accounts, per-estimator SENS/SPEC/PVP/PVN
	// quadrant snapshots) labelled with MetricsLabels, refreshed every
	// MetricsInterval cycles.
	Metrics *obs.Registry
	// MetricsLabels is the base label set for this run's series,
	// typically {workload, predictor}.
	MetricsLabels obs.Labels
	// MetricsInterval is the publish period in cycles for Metrics and
	// Progress (default 16384 when either is set).
	MetricsInterval uint64
	// Progress, when non-nil, receives periodic lock-free counter
	// updates for heartbeat printing.
	Progress *obs.Progress
}

// DefaultConfig returns the configuration used throughout the
// experiments: 4-wide fetch, branches resolving 3 cycles after fetch (a
// 5-stage pipe resolving at execute), the paper's 3-cycle extra recovery
// penalty, and the paper's cache sizes. The 3-cycle resolve depth also
// bounds how stale the non-speculatively-updated SAg history can get,
// matching the paper's observation that non-speculative update costs
// only slightly.
func DefaultConfig() Config {
	return Config{
		FetchWidth:             4,
		ResolveDelay:           3,
		ExtraMispredictPenalty: 3,
		ICache:                 cache.DefaultL1I,
		DCache:                 cache.DefaultL1D,
	}
}

// ConfigError reports an invalid Config, naming the offending field so
// callers (CLIs, the serve API) can point users at exactly what to fix.
type ConfigError struct {
	// Field is the Config field that failed validation, e.g.
	// "FetchWidth" or "Estimators[3]".
	Field string
	// Reason describes the violated constraint.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("pipeline: invalid Config.%s: %s", e.Field, e.Reason)
}

// Validate checks the configuration; failures are *ConfigError values
// naming the offending field.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth < 1 || c.FetchWidth > 16:
		return &ConfigError{"FetchWidth", fmt.Sprintf("%d out of range [1,16]", c.FetchWidth)}
	case c.ResolveDelay < 1 || c.ResolveDelay > 64:
		return &ConfigError{"ResolveDelay", fmt.Sprintf("%d out of range [1,64]", c.ResolveDelay)}
	case c.ExtraMispredictPenalty < 0:
		return &ConfigError{"ExtraMispredictPenalty", fmt.Sprintf("%d is negative", c.ExtraMispredictPenalty)}
	}
	if err := c.ICache.Validate(); err != nil {
		return &ConfigError{"ICache", err.Error()}
	}
	if err := c.DCache.Validate(); err != nil {
		return &ConfigError{"DCache", err.Error()}
	}
	if len(c.Estimators) > 1024 {
		return &ConfigError{"Estimators", fmt.Sprintf("%d estimators exceed the limit of 1024", len(c.Estimators))}
	}
	if c.RecordEvents && len(c.Estimators) > 64 {
		// BranchEvent.ConfMask carries one bit per estimator.
		return &ConfigError{"Estimators", fmt.Sprintf(
			"%d estimators with RecordEvents; events carry at most 64 confidence bits", len(c.Estimators))}
	}
	for i, e := range c.Estimators {
		if e == nil {
			return &ConfigError{fmt.Sprintf("Estimators[%d]", i), "estimator is nil"}
		}
	}
	if c.Policy != nil {
		if v, ok := c.Policy.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return &ConfigError{"Policy", err.Error()}
			}
		}
	}
	return nil
}

// BranchEvent records one fetched conditional branch.
type BranchEvent struct {
	PC        int64
	Pred      bool // predicted direction
	Outcome   bool // oracle (actual) direction
	HighConf  bool // confidence estimate of the first estimator, if any
	WrongPath bool // fetched in the shadow of an older misprediction
	Cycle     uint64
	// ConfMask holds every attached estimator's estimate: bit i is set
	// when estimator i said high confidence (at most 64 estimators).
	ConfMask uint64
}

// Correct reports whether the prediction matched the outcome.
func (e BranchEvent) Correct() bool { return e.Pred == e.Outcome }

// SiteStats aggregates prediction accuracy for one branch site
// (committed branches only).
type SiteStats struct {
	Correct, Total uint64
}

// Accuracy returns the site's prediction accuracy.
func (s SiteStats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Total)
}

// DistanceBuckets is the histogram length for misprediction-distance
// statistics; distances at or beyond the last bucket accumulate there.
const DistanceBuckets = 64

// DistanceHist accumulates (branch count, misprediction count) per
// distance since the last misprediction.
type DistanceHist struct {
	Total      [DistanceBuckets]uint64
	Mispredict [DistanceBuckets]uint64
}

// Record counts one branch observed dist branches after the previous
// reset point, mispredicted or not. Distances at or beyond the last
// bucket clamp into it. Exported so trace replay (internal/replay) can
// reproduce the simulator's histogram updates bit-for-bit.
func (h *DistanceHist) Record(dist int, mispredicted bool) {
	if dist >= DistanceBuckets {
		dist = DistanceBuckets - 1
	}
	h.Total[dist]++
	if mispredicted {
		h.Mispredict[dist]++
	}
}

// Rate returns the misprediction rate at the given distance, or 0 when
// no branches were observed there.
func (h *DistanceHist) Rate(dist int) float64 {
	if dist >= DistanceBuckets {
		dist = DistanceBuckets - 1
	}
	if h.Total[dist] == 0 {
		return 0
	}
	return float64(h.Mispredict[dist]) / float64(h.Total[dist])
}

// Stats collects everything a run produces.
type Stats struct {
	// Instruction and cycle counts.
	Committed   uint64 // committed (correct-path) instructions
	WrongPath   uint64 // squashed (wrong-path) instructions
	Cycles      uint64
	Squashes    uint64 // misprediction recoveries
	CommittedBr uint64 // committed conditional branches
	AllBr       uint64 // fetched conditional branches (committed + squashed)
	GatedCycles uint64 // cycles an external scheduler withheld fetch

	// CycleAccounts attributes every cycle to exactly one bucket; the
	// bucket counts sum to Cycles (CheckInvariant).
	CycleAccounts CycleAccounts

	// Indirect-jump statistics (populated under IndirectPrediction).
	Returns    uint64 // committed-path returns predicted via the RAS
	IndirectBr uint64 // committed-path non-return indirect jumps
	TargetMisp uint64 // target mispredictions (squashes caused)

	// CommittedQ and AllQ are the confidence quadrants of the *first*
	// attached estimator, for committed branches and all fetched
	// branches respectively. Without an estimator they still carry the
	// correct/incorrect split (everything lands in the HC column), so
	// accuracy metrics work regardless. Per-estimator quadrants for
	// every attached estimator live in Confidence.
	CommittedQ metrics.Quadrant
	AllQ       metrics.Quadrant

	// Confidence holds per-estimator statistics, in Config.Estimators
	// order. Estimators observe the run without
	// influencing it, so a single simulation evaluates many estimator
	// configurations at once.
	Confidence []ConfStats

	// Misprediction distance histograms (§4.1). "Precise" distances
	// reset when a mispredicted branch is *fetched* (oracle knowledge);
	// "perceived" distances reset when a misprediction is *detected*
	// at resolution, as real hardware would observe.
	PreciseAll         DistanceHist
	PreciseCommitted   DistanceHist
	PerceivedAll       DistanceHist
	PerceivedCommitted DistanceHist

	// Events is the full branch trace when Config.RecordEvents is set.
	Events []BranchEvent

	// Sites is per-branch-site accuracy when Config.CollectSiteStats
	// is set.
	Sites map[int64]*SiteStats

	// Cache statistics.
	ICacheHits, ICacheMisses uint64
	DCacheHits, DCacheMisses uint64
}

// ConfStats is one estimator's view of a run.
type ConfStats struct {
	// Name is the estimator's Name() at the time the run started.
	Name string
	// CommittedQ and AllQ are the confidence quadrants over committed
	// branches and over all fetched branches.
	CommittedQ metrics.Quadrant
	AllQ       metrics.Quadrant
	// MisestCommitted tracks confidence mis-estimation clustering: the
	// distance axis counts committed branches since the last committed
	// branch whose estimate disagreed with its outcome, and the
	// "mispredict" counts are mis-estimations (§4.1).
	MisestCommitted DistanceHist
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// SpeculationRatio returns (committed+wrong-path)/committed, the paper's
// Table 1 "ratio all/committed".
func (s *Stats) SpeculationRatio() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Committed+s.WrongPath) / float64(s.Committed)
}

// MispredictRate returns the committed-branch misprediction rate.
func (s *Stats) MispredictRate() float64 { return s.CommittedQ.MispredictRate() }

// inflight is a fetched, not-yet-resolved correct-path conditional
// branch.
type inflight struct {
	pc           int64
	info         bpred.Info
	ckpt         bpred.Checkpoint
	outcome      bool
	pred         bool
	resolveCycle uint64
	mispredicted bool
	lowConf      bool // first estimator said low confidence

	// Indirect-jump entries (JALR under target prediction).
	indirect bool
	isReturn bool
	target   int64 // actual target, for BTB training
	rasCkpt  int   // RAS top-of-stack at fetch
}

// Sim is one simulation run: a program, a predictor, any number of
// confidence estimators under observation, and the timing state.
type Sim struct {
	cfg  Config
	prog *isa.Program
	pred bpred.Predictor
	ests []conf.Estimator

	// Concrete-type fast paths for the three predictors the experiments
	// sweep. Interface dispatch on Predict/Resolve/Recover showed up in
	// per-branch profiles; exactly one of these is non-nil when the
	// predictor is of the matching concrete type, and the devirtualized
	// call sites let the compiler inline the small table lookups. The
	// generic interface path remains for every other Predictor.
	predG *bpred.Gshare
	predM *bpred.McFarling
	predS *bpred.SAg

	// estFast mirrors ests with concrete-type fast paths for the four
	// estimator families the paper's main tables sweep; their Estimate
	// bodies are a handful of instructions, so the interface call was
	// most of their cost. estGeneric entries fall back to the interface.
	estFast []estFast

	// policy is the per-Sim speculation-control policy instance (nil =
	// always full rate); fetchWidth is the width the current cycle's
	// fetch group may use — cfg.FetchWidth forever when policy is nil,
	// rewritten at the top of each Tick otherwise.
	policy     Policy
	fetchWidth int

	state  emu.State
	mem    *mem.Memory
	icache *cache.Cache
	dcache *cache.Cache
	btb    *btb.BTB // nil unless IndirectPrediction
	ras    *btb.RAS // nil unless IndirectPrediction

	stats Stats

	// Timing state. stallReason is the bucket charged to cycles the
	// front end spends blocked behind stallUntil.
	cycle       uint64
	stallUntil  uint64
	stallReason CycleBucket

	// Observability state: pre-resolved gauges and the publish period
	// (0 = observation disabled; Tick pays one decrement-and-compare —
	// obsLeft counts down to the next publish, avoiding a per-cycle
	// modulo on the hot path).
	gauges   *simGauges
	obsEvery uint64
	obsLeft  uint64

	// Wrong-path state. When wrongPath is true the machine is fetching
	// in the shadow of the oldest unresolved misprediction; recover*
	// hold the state to restore at resolution.
	wrongPath     bool
	wrongPathIdle bool // wrong path ran into HALT; fetch suspended
	recoverRegs   [isa.NumRegs]int64
	recoverPC     int64

	// pending holds fetched, unresolved correct-path conditional
	// branches in fetch order, in a preallocated ring buffer (branches
	// resolve from the front; the occupancy bound is
	// (ResolveDelay+1)*FetchWidth, so the ring never grows after New).
	// Wrong-path branches are recorded at fetch and need no resolution,
	// so they are never enqueued.
	pending inflightRing

	// Distance counters (see Stats).
	distPreciseAll       int
	distPreciseCommitted int
	distPerceivedAll     int
	distPerceivedComm    int
	distMisest           []int // one per estimator

	// hcScratch avoids a per-branch allocation when fanning estimates
	// out to the estimators.
	hcScratch []bool

	// execRes is the scratch result for emu.ExecInto: returning the
	// ~7-word Result by value was a measurable share of per-slot fetch
	// cost. Valid only within one fetchGroup slot.
	execRes emu.Result

	halted bool
}

// New prepares a simulation of prog on the given predictor, observed by
// the confidence estimators in cfg.Estimators. It returns a *ConfigError
// (wrapped) when the configuration is invalid and a plain error when
// prog or pred is missing; MustNew is the panicking convenience wrapper
// for static configurations.
func New(cfg Config, prog *isa.Program, pred bpred.Predictor) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, fmt.Errorf("pipeline: nil program")
	}
	if pred == nil {
		return nil, fmt.Errorf("pipeline: nil predictor")
	}
	ests := cfg.Estimators
	s := &Sim{
		cfg:    cfg,
		prog:   prog,
		pred:   pred,
		ests:   ests,
		mem:    mem.NewFromImage(prog.Data),
		icache: cache.New(cfg.ICache),
		dcache: cache.New(cfg.DCache),

		policy:     policyFor(cfg),
		fetchWidth: cfg.FetchWidth,
	}
	switch p := pred.(type) {
	case *bpred.Gshare:
		s.predG = p
	case *bpred.McFarling:
		s.predM = p
	case *bpred.SAg:
		s.predS = p
	}
	s.estFast = make([]estFast, len(ests))
	for i, e := range ests {
		switch v := e.(type) {
		case *conf.JRS:
			s.estFast[i] = estFast{kind: estJRS, jrs: v}
		case conf.SatCounters:
			s.estFast[i] = estFast{kind: estSat}
		case conf.SatCountersMcFarling:
			s.estFast[i] = estFast{kind: estSatMcF, satM: v}
		case conf.PatternHistory:
			s.estFast[i] = estFast{kind: estPattern, pat: v}
		case conf.Static:
			s.estFast[i] = estFast{kind: estStatic, st: v}
		}
	}
	// The ring's occupancy bound: every pending branch resolves within
	// ResolveDelay+1 cycles of fetch and at most FetchWidth branches are
	// fetched per cycle, so this capacity makes steady state
	// allocation-free.
	s.pending.init((cfg.ResolveDelay + 2) * cfg.FetchWidth)
	s.state.PC = prog.Entry
	if cfg.IndirectPrediction {
		entries, assoc, depth := cfg.BTBEntries, cfg.BTBAssoc, cfg.RASDepth
		if entries == 0 {
			entries = 512
		}
		if assoc == 0 {
			assoc = 4
		}
		if depth == 0 {
			depth = 16
		}
		s.btb = btb.NewBTB(entries, assoc)
		s.ras = btb.NewRAS(depth)
	}
	if cfg.CollectSiteStats {
		s.stats.Sites = make(map[int64]*SiteStats)
	}
	s.stats.Confidence = make([]ConfStats, len(ests))
	for i, e := range ests {
		s.stats.Confidence[i].Name = e.Name()
	}
	s.distMisest = make([]int, len(ests))
	s.hcScratch = make([]bool, len(ests))
	if cfg.Metrics != nil || cfg.Progress != nil {
		s.obsEvery = cfg.MetricsInterval
		if s.obsEvery == 0 {
			s.obsEvery = 16384
		}
		s.obsLeft = s.obsEvery
	}
	if cfg.Metrics != nil {
		s.gauges = newSimGauges(cfg.Metrics, cfg.MetricsLabels, s.stats.Confidence)
	}
	if cfg.RecordEvents {
		s.stats.Events = make([]BranchEvent, 0, 4096)
	}
	return s, nil
}

// MustNew is New for statically known-good configurations; it panics on
// error. Tests and examples use it.
func MustNew(cfg Config, prog *isa.Program, pred bpred.Predictor) *Sim {
	s, err := New(cfg, prog, pred)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Sim) fetchInstr(pc int64) isa.Instruction {
	if pc < 0 || pc >= int64(len(s.prog.Code)) {
		return isa.Instruction{Op: isa.OpHalt}
	}
	return s.prog.Code[pc]
}

// predict dispatches Predict through the concrete fast path when one
// applies (see the predG/predM/predS fields).
func (s *Sim) predict(pc int64) (bool, bpred.Checkpoint, bpred.Info) {
	switch {
	case s.predG != nil:
		return s.predG.Predict(pc)
	case s.predM != nil:
		return s.predM.Predict(pc)
	case s.predS != nil:
		return s.predS.Predict(pc)
	}
	return s.pred.Predict(pc)
}

// resolvePred dispatches Resolve through the concrete fast path.
func (s *Sim) resolvePred(pc int64, info bpred.Info, taken bool) {
	switch {
	case s.predG != nil:
		s.predG.Resolve(pc, info, taken)
	case s.predM != nil:
		s.predM.Resolve(pc, info, taken)
	case s.predS != nil:
		s.predS.Resolve(pc, info, taken)
	default:
		s.pred.Resolve(pc, info, taken)
	}
}

// recoverPred dispatches Recover through the concrete fast path.
func (s *Sim) recoverPred(ckpt bpred.Checkpoint, pc int64, taken bool) {
	switch {
	case s.predG != nil:
		s.predG.Recover(ckpt, pc, taken)
	case s.predM != nil:
		s.predM.Recover(ckpt, pc, taken)
	case s.predS != nil:
		s.predS.Recover(ckpt, pc, taken)
	default:
		s.pred.Recover(ckpt, pc, taken)
	}
}

// estKind tags the concrete estimator families with devirtualized call
// sites; estGeneric (the zero value) routes through the interface.
type estKind uint8

const (
	estGeneric estKind = iota
	estJRS
	estSat
	estSatMcF
	estPattern
	estStatic
)

// estFast caches one estimator's concrete identity for direct dispatch
// (value-type estimators are stored by value; copying conf.Static only
// copies its map header, the profile itself is shared).
type estFast struct {
	kind estKind
	jrs  *conf.JRS
	satM conf.SatCountersMcFarling
	pat  conf.PatternHistory
	st   conf.Static
}

// estimate dispatches ests[i].Estimate through the concrete fast path.
func (s *Sim) estimate(i int, pc int64, info bpred.Info) bool {
	switch f := &s.estFast[i]; f.kind {
	case estJRS:
		return f.jrs.Estimate(pc, info)
	case estSat:
		return conf.SatCounters{}.Estimate(pc, info)
	case estSatMcF:
		return f.satM.Estimate(pc, info)
	case estPattern:
		return f.pat.Estimate(pc, info)
	case estStatic:
		return f.st.Estimate(pc, info)
	}
	return s.ests[i].Estimate(pc, info)
}

// estResolve dispatches ests[i].Resolve through the concrete fast path;
// the value-type families' Resolve methods are empty, so their cases
// compile to nothing.
func (s *Sim) estResolve(i int, pc int64, info bpred.Info, correct bool) {
	switch f := &s.estFast[i]; f.kind {
	case estJRS:
		f.jrs.Resolve(pc, info, correct)
	case estSat, estSatMcF, estPattern, estStatic:
	default:
		s.ests[i].Resolve(pc, info, correct)
	}
}

// resolveDue processes every pending correct-path branch whose resolve
// cycle has arrived. It returns true if a misprediction recovery
// happened (which redirects fetch).
func (s *Sim) resolveDue() bool {
	recovered := false
	for s.pending.len() > 0 && s.pending.front().resolveCycle <= s.cycle {
		// Resolve through the slot pointer: popFront/clear only move
		// indices (slots are not zeroed and nothing pushes inside this
		// loop), so the entry stays intact while we read it and the
		// ~10-word copy is avoided.
		br := s.pending.front()
		s.pending.popFront()
		if br.indirect {
			if !br.isReturn {
				s.btb.Update(br.pc, br.target)
			}
			if br.mispredicted {
				s.pred.RestoreSnapshot(br.ckpt)
				s.ras.Restore(br.rasCkpt)
				s.squash()
				recovered = true
			}
			continue
		}
		s.resolvePred(br.pc, br.info, br.outcome)
		for i := range s.ests {
			s.estResolve(i, br.pc, br.info, br.pred == br.outcome)
		}
		if br.mispredicted {
			s.recoverPred(br.ckpt, br.pc, br.outcome)
			if s.ras != nil {
				s.ras.Restore(br.rasCkpt)
			}
			s.squash()
			// Detection resets the perceived distance counters.
			s.distPerceivedAll = 0
			s.distPerceivedComm = 0
			recovered = true
			// Younger pending entries are all wrong-path; squash()
			// discarded them.
		}
	}
	return recovered
}

// squash unwinds the wrong path: restores registers and memory, redirects
// fetch to the correct target, charges the recovery penalty, and drops
// the wrong-path pending entries.
func (s *Sim) squash() {
	if !s.wrongPath {
		panic("pipeline: squash outside wrong-path mode")
	}
	s.state.Regs = s.recoverRegs
	s.state.PC = s.recoverPC
	s.mem.Rollback()
	s.pending.clear() // everything younger was wrong-path
	s.wrongPath = false
	s.wrongPathIdle = false
	s.stats.Squashes++
	penalty := uint64(1 + s.cfg.ExtraMispredictPenalty)
	if s.stallUntil < s.cycle+penalty {
		s.stallUntil = s.cycle + penalty
		s.stallReason = BucketMispredictRecovery
	}
}

// onCondBranch handles prediction, confidence estimation, statistics and
// wrong-path entry for a conditional branch fetched at pc whose oracle
// outcome is known. It returns the PC the front end should follow.
func (s *Sim) onCondBranch(pc int64, outcome bool, takenTarget, notTakenTarget int64) int64 {
	pred, ckpt, info := s.predict(pc)
	correct := pred == outcome
	hc0 := true // first estimator's view, mirrored into CommittedQ/AllQ
	var confMask uint64
	for i := range s.ests {
		hc := s.estimate(i, pc, info)
		s.hcScratch[i] = hc
		if hc {
			confMask |= 1 << uint(i)
		}
		if i == 0 {
			hc0 = hc
		}
	}

	// --- statistics at fetch ---
	s.stats.AllBr++
	s.stats.AllQ.Record(correct, hc0)
	for i := range s.ests {
		s.stats.Confidence[i].AllQ.Record(correct, s.hcScratch[i])
	}
	s.distPreciseAll++
	s.distPerceivedAll++
	s.stats.PreciseAll.Record(s.distPreciseAll, !correct)
	s.stats.PerceivedAll.Record(s.distPerceivedAll, !correct)
	if !correct {
		s.distPreciseAll = 0
	}
	if !s.wrongPath {
		s.stats.CommittedBr++
		s.stats.CommittedQ.Record(correct, hc0)
		s.distPreciseCommitted++
		s.distPerceivedComm++
		s.stats.PreciseCommitted.Record(s.distPreciseCommitted, !correct)
		s.stats.PerceivedCommitted.Record(s.distPerceivedComm, !correct)
		if !correct {
			s.distPreciseCommitted = 0
		}
		for i := range s.ests {
			cs := &s.stats.Confidence[i]
			cs.CommittedQ.Record(correct, s.hcScratch[i])
			s.distMisest[i]++
			if misest := s.hcScratch[i] != correct; misest {
				cs.MisestCommitted.Record(s.distMisest[i], true)
				s.distMisest[i] = 0
			} else {
				cs.MisestCommitted.Record(s.distMisest[i], false)
			}
		}
		if s.stats.Sites != nil {
			st := s.stats.Sites[pc]
			if st == nil {
				st = &SiteStats{}
				s.stats.Sites[pc] = st
			}
			st.Total++
			if correct {
				st.Correct++
			}
		}
	}
	if s.cfg.RecordEvents {
		s.stats.Events = append(s.stats.Events, BranchEvent{
			PC: pc, Pred: pred, Outcome: outcome, HighConf: hc0,
			WrongPath: s.wrongPath, Cycle: s.cycle, ConfMask: confMask,
		})
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Branch(obs.BranchEvent{
			PC: pc, Pred: pred, Outcome: outcome, HighConf: hc0,
			WrongPath: s.wrongPath, Cycle: s.cycle, ConfMask: confMask,
		})
	}

	// --- machine behaviour ---
	predTarget := notTakenTarget
	if pred {
		predTarget = takenTarget
	}
	if s.wrongPath {
		// Inside an older misprediction's shadow the machine always
		// follows its prediction; this branch will be squashed before
		// it could trigger its own recovery.
		return predTarget
	}
	rasCkpt := 0
	if s.ras != nil {
		rasCkpt = s.ras.Checkpoint()
	}
	*s.pending.push() = inflight{
		pc: pc, info: info, ckpt: ckpt, outcome: outcome, pred: pred,
		resolveCycle: s.cycle + uint64(s.cfg.ResolveDelay),
		mispredicted: !correct,
		lowConf:      len(s.ests) > 0 && !hc0,
		rasCkpt:      rasCkpt,
	}
	if correct {
		return predTarget
	}
	// Enter wrong-path mode: remember the correct continuation, fork
	// memory, and follow the (wrong) predicted path.
	s.wrongPath = true
	s.recoverRegs = s.state.Regs
	correctTarget := notTakenTarget
	if outcome {
		correctTarget = takenTarget
	}
	s.recoverPC = correctTarget
	s.mem.BeginJournal()
	return predTarget
}

// Tick advances the machine by one cycle: due branches resolve (possibly
// squashing), and — when fetchAllowed is true and the front end is not
// stalled — one fetch group is processed. External schedulers (SMT fetch
// policies, pipeline gating) drive the machine through Tick and decide
// fetchAllowed per cycle; Run is the trivial always-fetch driver.
//
// Tick returns done=true once the program has halted and all pending
// branches have drained, and an error if MaxCycles is exceeded.
//
// When Config.Policy is set, the policy is consulted here — before this
// cycle's branch resolutions, so it sees the same pending-branch state
// an external driver polling PendingLowConf before Tick would — and its
// verdict composes with fetchAllowed: an externally withheld cycle
// (fetchAllowed=false) skips the policy entirely, a policy width of 0
// gates the cycle exactly as fetchAllowed=false would, and a partial
// width limits this cycle's fetch group.
func (s *Sim) Tick(fetchAllowed bool) (done bool, err error) {
	if s.policy != nil && fetchAllowed {
		w := s.policy.Width(FetchSignal{
			Cycle:           s.cycle + 1,
			PendingLowConf:  s.PendingLowConf(),
			PendingBranches: s.pending.len(),
			FetchWidth:      s.cfg.FetchWidth,
		})
		switch {
		case w <= 0:
			fetchAllowed = false
		case w >= s.cfg.FetchWidth:
			s.fetchWidth = s.cfg.FetchWidth
		default:
			s.fetchWidth = w
		}
	}
	s.cycle++
	s.stats.Cycles = s.cycle
	if s.cfg.MaxCycles > 0 && s.cycle > s.cfg.MaxCycles {
		// The aborted cycle is already in Stats.Cycles; charge it as
		// idle wait so the accounting invariant survives error paths.
		s.account(BucketResolveWait)
		return false, fmt.Errorf("pipeline: %s exceeded %d cycles",
			s.prog.Name, s.cfg.MaxCycles)
	}
	if s.resolveDue() {
		s.account(BucketMispredictRecovery)
		return s.tickDone(), nil // redirect consumes the cycle
	}
	if s.halted {
		// Program done; any remaining cycles drain in-flight branches.
		s.account(BucketResolveWait)
		return s.tickDone(), nil
	}
	if !fetchAllowed || s.stallUntil > s.cycle || s.wrongPathIdle {
		switch {
		case s.stallUntil > s.cycle:
			s.account(s.stallReason)
		case s.wrongPathIdle:
			s.account(BucketWrongPathFetch)
		default: // !fetchAllowed, and the machine could otherwise fetch
			s.stats.GatedCycles++
			s.account(BucketGated)
		}
		return s.tickDone(), nil
	}
	s.account(s.fetchCycle())
	if s.cfg.MaxCommitted > 0 && s.stats.Committed >= s.cfg.MaxCommitted {
		s.halted = true
	}
	return s.tickDone(), nil
}

// account charges the current cycle to one bucket.
func (s *Sim) account(b CycleBucket) { s.stats.CycleAccounts[b]++ }

// tickDone publishes observability data on the configured interval and
// reports run completion.
func (s *Sim) tickDone() bool {
	if s.obsEvery != 0 {
		if s.obsLeft--; s.obsLeft == 0 {
			s.obsLeft = s.obsEvery
			s.publish()
		}
	}
	return s.finished()
}

// finished reports whether the run is fully complete: program halted and
// no branch left in flight.
func (s *Sim) finished() bool { return s.halted && s.pending.len() == 0 }

// Finish seals the statistics after the last Tick: rolls back any
// dangling wrong path and snapshots cache counters. Run calls it
// automatically; external schedulers must call it once when done.
func (s *Sim) Finish() *Stats {
	if s.wrongPath {
		s.mem.Rollback()
		s.wrongPath = false
	}
	ih, im := s.icache.Stats()
	dh, dm := s.dcache.Stats()
	s.stats.ICacheHits, s.stats.ICacheMisses = ih, im
	s.stats.DCacheHits, s.stats.DCacheMisses = dh, dm
	if s.obsEvery != 0 {
		s.publish() // final values, so scrapes after the run are exact
	}
	return &s.stats
}

// Done reports whether the simulation has fully completed.
func (s *Sim) Done() bool { return s.finished() }

// PendingLowConf returns the number of in-flight (fetched, unresolved)
// conditional branches whose first-estimator confidence estimate was low.
// Pipeline gating and SMT fetch policies key off this occupancy count.
func (s *Sim) PendingLowConf() int {
	n := 0
	for i := 0; i < s.pending.len(); i++ {
		if s.pending.at(i).lowConf {
			n++
		}
	}
	return n
}

// PendingBranches returns the number of in-flight conditional branches.
func (s *Sim) PendingBranches() int { return s.pending.len() }

// Run executes the simulation until HALT or a configured limit and
// returns the statistics. A Sim is single-use.
func (s *Sim) Run() (*Stats, error) {
	for {
		done, err := s.Tick(true)
		if err != nil {
			s.Finish()
			return &s.stats, err
		}
		if done {
			break
		}
	}
	return s.Finish(), nil
}

// fetchCycle fetches and functionally executes up to FetchWidth
// instructions and attributes the cycle: useful fetch when any
// correct-path instruction committed, wrong-path work when only
// wrong-path instructions advanced, otherwise whatever stopped the
// empty fetch group (cache miss, halt discovery).
func (s *Sim) fetchCycle() CycleBucket {
	c0, w0 := s.stats.Committed, s.stats.WrongPath
	empty := s.fetchGroup()
	switch {
	case s.stats.Committed > c0:
		return BucketUsefulFetch
	case s.stats.WrongPath > w0:
		return BucketWrongPathFetch
	default:
		return empty
	}
}

// stallBucket records why the front end is about to stall and returns
// the bucket for the stall cycles. Stalls incurred on the wrong path
// are misspeculation cost, whatever their proximate cause.
func (s *Sim) stallBucket(b CycleBucket) CycleBucket {
	if s.wrongPath {
		b = BucketWrongPathFetch
	}
	s.stallReason = b
	return b
}

// fetchGroup fetches and functionally executes up to fetchWidth
// instructions — Config.FetchWidth, or less when this cycle's policy
// verdict throttled the group — returning the cycle bucket to charge
// when the group fetched nothing at all.
func (s *Sim) fetchGroup() CycleBucket {
	for slot := 0; slot < s.fetchWidth; slot++ {
		pc := s.state.PC
		lat, hit := s.icache.Access(pc)
		if !hit {
			// An I-cache miss stalls fetch for the fill latency.
			s.stallUntil = s.cycle + uint64(lat)
			return s.stallBucket(BucketICacheStall)
		}
		in := s.fetchInstr(pc)

		if in.Op == isa.OpHalt {
			if s.wrongPath {
				// The wrong path ran off the program; idle until the
				// misprediction resolves.
				s.wrongPathIdle = true
				return BucketWrongPathFetch
			}
			s.halted = true
			return BucketResolveWait
		}

		if in.Op.IsCondBranch() {
			// Compute the oracle outcome without disturbing state:
			// branches read registers only.
			ra, rb := s.state.Regs[in.Ra], s.state.Regs[in.Rb]
			var outcome bool
			switch in.Op {
			case isa.OpBeq:
				outcome = ra == rb
			case isa.OpBne:
				outcome = ra != rb
			case isa.OpBlt:
				outcome = ra < rb
			default: // OpBge
				outcome = ra >= rb
			}
			takenTarget := pc + 1 + int64(in.Imm)
			// Count the branch on its own path before onCondBranch can
			// flip the machine into wrong-path mode: a mispredicted
			// correct-path branch still commits.
			s.countInstr()
			next := s.onCondBranch(pc, outcome, takenTarget, pc+1)
			s.state.PC = next
			if next != pc+1 {
				// A taken-path redirect ends the fetch group.
				return BucketUsefulFetch
			}
			continue
		}

		// Indirect control flow: predict the target before executing,
		// when the target predictors are enabled. The RAS checkpoint is
		// taken after the jump's own pop/push — the jump itself
		// commits; only younger operations are squashed.
		var predTarget int64
		var predIsReturn, haveTargetPred bool
		var rasCkpt int
		if s.ras != nil && in.Op == isa.OpJalr {
			predTarget, predIsReturn = s.predictTarget(pc, in)
			rasCkpt = s.ras.Checkpoint()
			haveTargetPred = true
		}

		// Non-branch: execute functionally (into the scratch result to
		// skip the by-value return copy — see Sim.execRes).
		res := &s.execRes
		emu.ExecInto(&s.state, s.mem, in, res)
		s.countInstr()
		if res.Mem.IsLoad || res.Mem.IsStore {
			if dlat, dhit := s.dcache.Access(res.Mem.Addr); !dhit {
				// A D-cache miss stalls the pipe (simplified in-order
				// memory model).
				s.stallUntil = s.cycle + uint64(dlat)
				return s.stallBucket(BucketDCacheStall)
			}
		}
		switch in.Op {
		case isa.OpJal:
			if s.ras != nil && in.Rd == isa.RA {
				s.ras.Push(pc + 1) // call: remember the return address
			}
			// Direct targets need no prediction.
			return BucketUsefulFetch
		case isa.OpJalr:
			if haveTargetPred {
				s.onIndirect(pc, predTarget, res.NextPC, predIsReturn, rasCkpt)
			}
			// Without target prediction the target is assumed perfect,
			// matching the paper's conditional-branch-only focus.
			return BucketUsefulFetch
		}
	}
	return BucketUsefulFetch
}

// predictTarget consults the RAS (for returns) or the BTB (for other
// indirect jumps) for the JALR at pc. A predictor miss predicts the
// fall-through, which a real front end would effectively do too.
func (s *Sim) predictTarget(pc int64, in isa.Instruction) (target int64, isReturn bool) {
	if in.Rd == isa.Zero && in.Ra == isa.RA && in.Imm == 0 {
		if !s.wrongPath {
			s.stats.Returns++
		}
		if target, ok := s.ras.Pop(); ok {
			return target, true
		}
		return pc + 1, true
	}
	if !s.wrongPath {
		s.stats.IndirectBr++
	}
	if in.Rd == isa.RA {
		// Indirect call: remember the return address.
		s.ras.Push(pc + 1)
	}
	if target, ok := s.btb.Lookup(pc); ok {
		return target, false
	}
	return pc + 1, false
}

// onIndirect compares the predicted and actual targets of a JALR; a
// mismatch on the correct path enters wrong-path mode exactly like a
// mispredicted conditional branch, except that the branch predictor's
// history is restored verbatim at recovery (no outcome bit to append).
// rasCkpt is the RAS state captured *before* the jump's own pop/push.
func (s *Sim) onIndirect(pc int64, predTarget, actual int64, isReturn bool, rasCkpt int) {
	mispredicted := predTarget != actual
	if s.wrongPath {
		// Inside an older misprediction's shadow: follow the predicted
		// target; the enclosing squash will clean up.
		s.state.PC = predTarget
		return
	}
	*s.pending.push() = inflight{
		pc:           pc,
		ckpt:         s.pred.Snapshot(),
		resolveCycle: s.cycle + uint64(s.cfg.ResolveDelay),
		mispredicted: mispredicted,
		indirect:     true,
		isReturn:     isReturn,
		target:       actual,
		rasCkpt:      rasCkpt,
	}
	if !mispredicted {
		return
	}
	s.stats.TargetMisp++
	s.wrongPath = true
	s.recoverRegs = s.state.Regs
	s.recoverPC = actual
	s.mem.BeginJournal()
	s.state.PC = predTarget
}

func (s *Sim) countInstr() {
	if s.wrongPath {
		s.stats.WrongPath++
	} else {
		s.stats.Committed++
	}
}

// Registers returns the current architectural registers (after Run, the
// committed state). Exposed for oracle cross-checks in tests.
func (s *Sim) Registers() [isa.NumRegs]int64 { return s.state.Regs }

// Memory returns the simulation's memory (after Run, committed state).
func (s *Sim) Memory() *mem.Memory { return s.mem }
