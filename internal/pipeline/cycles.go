package pipeline

import (
	"fmt"
	"strings"
)

// CycleBucket classifies where a simulated cycle went. Every cycle the
// simulator ticks is attributed to exactly one bucket — the invariant
// CycleAccounts.Total() == Stats.Cycles holds on every run, error paths
// included, and doubles as a correctness check on the timing model.
//
// Attribution rules (see Tick and fetchCycle):
//
//   - A cycle whose fetch group commits at least one correct-path
//     instruction is UsefulFetch, even if the group also strays onto
//     the wrong path or ends in a cache miss; the miss's stall cycles
//     get their own bucket.
//   - A fetch cycle that advances only wrong-path instructions is
//     WrongPathFetch, and front-end stalls incurred *while* on the
//     wrong path (including the idle wait after a wrong path runs off
//     the program) are charged to WrongPathFetch too: they are
//     misspeculation cost, not cache cost.
//   - Correct-path I-cache and D-cache miss stalls are ICacheStall and
//     DCacheStall.
//   - The squash/redirect cycle of a misprediction recovery and the
//     extra recovery-penalty cycles that follow are MispredictRecovery.
//   - Cycles after HALT spent draining in-flight branches, and the
//     cycle that discovers HALT without fetching anything, are
//     ResolveWait — the front end is idle waiting on branch
//     resolution.
//   - Cycles an external scheduler (pipeline gating, SMT fetch policy)
//     withheld fetch are Gated; they mirror Stats.GatedCycles.
type CycleBucket int

const (
	// BucketUsefulFetch: at least one correct-path instruction fetched.
	BucketUsefulFetch CycleBucket = iota
	// BucketICacheStall: front end blocked on a correct-path I-cache miss.
	BucketICacheStall
	// BucketDCacheStall: pipe blocked on a correct-path D-cache miss.
	BucketDCacheStall
	// BucketResolveWait: idle waiting for in-flight branches to resolve.
	BucketResolveWait
	// BucketMispredictRecovery: squash redirect plus recovery penalty.
	BucketMispredictRecovery
	// BucketWrongPathFetch: fetch or stall beyond an unresolved misprediction.
	BucketWrongPathFetch
	// BucketGated: an external scheduler withheld fetch this cycle.
	BucketGated
	// NumCycleBuckets sizes per-bucket arrays.
	NumCycleBuckets
)

var cycleBucketNames = [NumCycleBuckets]string{
	BucketUsefulFetch:        "useful_fetch",
	BucketICacheStall:        "icache_stall",
	BucketDCacheStall:        "dcache_stall",
	BucketResolveWait:        "resolve_wait",
	BucketMispredictRecovery: "mispredict_recovery",
	BucketWrongPathFetch:     "wrong_path",
	BucketGated:              "gated",
}

// String returns the bucket's snake_case name (used as a metric label).
func (b CycleBucket) String() string {
	if b < 0 || b >= NumCycleBuckets {
		return fmt.Sprintf("bucket(%d)", int(b))
	}
	return cycleBucketNames[b]
}

// CycleAccounts is the per-bucket cycle breakdown of a run.
type CycleAccounts [NumCycleBuckets]uint64

// Total returns the sum over all buckets; it must equal Stats.Cycles.
func (c CycleAccounts) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Fraction returns the share of total cycles spent in bucket b.
func (c CycleAccounts) Fraction(b CycleBucket) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[b]) / float64(t)
}

// SpeculationOverhead returns the fraction of cycles lost to
// misspeculation: wrong-path fetch plus misprediction recovery. This
// is the quantity speculation control tries to shrink.
func (c CycleAccounts) SpeculationOverhead() float64 {
	return c.Fraction(BucketWrongPathFetch) + c.Fraction(BucketMispredictRecovery)
}

// Render formats the breakdown as an aligned table, largest bucket
// first omitted — buckets print in taxonomy order so runs diff cleanly.
func (c CycleAccounts) Render() string {
	var b strings.Builder
	t := c.Total()
	fmt.Fprintf(&b, "cycles %d\n", t)
	for i := CycleBucket(0); i < NumCycleBuckets; i++ {
		fmt.Fprintf(&b, "  %-20s %12d  %5.1f%%\n",
			i.String(), c[i], 100*c.Fraction(i))
	}
	return b.String()
}

// CheckInvariant verifies the accounting against a total cycle count,
// returning a descriptive error on mismatch. Tests call it after every
// run; it is cheap enough for production callers to assert too.
func (c CycleAccounts) CheckInvariant(cycles uint64) error {
	if got := c.Total(); got != cycles {
		return fmt.Errorf("pipeline: cycle accounting leak: buckets sum to %d, Stats.Cycles=%d (Δ=%d)\n%s",
			got, cycles, int64(cycles)-int64(got), c.Render())
	}
	return nil
}
