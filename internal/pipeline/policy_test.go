package pipeline

import (
	"reflect"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
)

// gatePolicy is the paper's gating policy, re-declared locally: the
// pipeline package cannot import internal/policy (which imports it), and
// the equivalence tests here are about the Tick-side contract, not the
// implementations.
type gatePolicy struct{ threshold int }

func (g gatePolicy) Name() string { return "testgate" }
func (g gatePolicy) Width(sig FetchSignal) int {
	if sig.PendingLowConf >= g.threshold {
		return 0
	}
	return sig.FetchWidth
}

// widthPolicy throttles every cycle to a fixed width.
type widthPolicy struct{ width int }

func (w widthPolicy) Name() string          { return "testwidth" }
func (w widthPolicy) Width(FetchSignal) int { return w.width }

// statefulPolicy counts its consultations; Fresh gives each Sim its own
// counter.
type statefulPolicy struct{ consults int }

func (p *statefulPolicy) Name() string { return "teststateful" }
func (p *statefulPolicy) Width(sig FetchSignal) int {
	p.consults++
	return sig.FetchWidth
}
func (p *statefulPolicy) Fresh() Policy { return &statefulPolicy{} }

func policyTestConfig() Config {
	cfg := testConfig()
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	cfg.MaxCommitted = 30_000
	return cfg
}

// runDriver drives a sim the way the old external gating loop did:
// poll PendingLowConf before each Tick and withhold fetch at or above
// the threshold.
func runDriver(t *testing.T, cfg Config, prog *isa.Program, threshold int) *Stats {
	t.Helper()
	sim := MustNew(cfg, prog, bpred.NewGshare(12))
	for {
		allow := sim.PendingLowConf() < threshold
		done, err := sim.Tick(allow)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	return sim.Finish()
}

// TestPolicyMatchesExternalDriver is the timing-fidelity contract the
// frontier experiment's byte-identity rests on: an installed gating
// policy must reproduce the old external PendingLowConf-before-Tick
// driver cycle for cycle, statistic for statistic.
func TestPolicyMatchesExternalDriver(t *testing.T) {
	prog := loopProgram(1 << 30)
	for _, threshold := range []int{1, 2, 4} {
		external := runDriver(t, policyTestConfig(), prog, threshold)

		cfg := policyTestConfig()
		cfg.Policy = gatePolicy{threshold: threshold}
		internal, err := MustNew(cfg, prog, bpred.NewGshare(12)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(external, internal) {
			t.Errorf("threshold %d: installed policy diverges from external driver:\nexternal: %+v\ninternal: %+v",
				threshold, external, internal)
		}
		if internal.GatedCycles == 0 {
			t.Errorf("threshold %d: no gated cycles; the comparison is vacuous", threshold)
		}
	}
}

// TestPolicyFullWidthIsTransparent: a policy that always returns full
// width must not perturb the run at all.
func TestPolicyFullWidthIsTransparent(t *testing.T) {
	prog := loopProgram(1 << 30)
	base, err := MustNew(policyTestConfig(), prog, bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := policyTestConfig()
	cfg.Policy = widthPolicy{width: cfg.FetchWidth}
	full, err := MustNew(cfg, prog, bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, full) {
		t.Errorf("full-width policy perturbed the run:\nbase: %+v\npolicied: %+v", base, full)
	}
}

// TestPolicyThrottleSlowsFetch: a width-1 throttle on a 4-wide machine
// must cost cycles but commit identical architectural work.
func TestPolicyThrottleSlowsFetch(t *testing.T) {
	prog := loopProgram(1 << 30)
	base, err := MustNew(policyTestConfig(), prog, bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := policyTestConfig()
	cfg.Policy = widthPolicy{width: 1}
	throttled, err := MustNew(cfg, prog, bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Both runs stop at the MaxCommitted budget; the wide fetch group
	// may overshoot it by at most a group's worth of instructions.
	cfg2 := policyTestConfig()
	for _, st := range []*Stats{base, throttled} {
		if st.Committed < cfg2.MaxCommitted || st.Committed >= cfg2.MaxCommitted+uint64(cfg2.FetchWidth) {
			t.Errorf("committed %d outside [%d, %d)", st.Committed,
				cfg2.MaxCommitted, cfg2.MaxCommitted+uint64(cfg2.FetchWidth))
		}
	}
	if throttled.Cycles <= base.Cycles {
		t.Errorf("width-1 throttle did not cost cycles: %d <= %d", throttled.Cycles, base.Cycles)
	}
	if err := throttled.CycleAccounts.CheckInvariant(throttled.Cycles); err != nil {
		t.Errorf("cycle accounting broken under throttle: %v", err)
	}
}

// TestPolicyGatedAccounting: a policy gate is accounted exactly like an
// externally withheld cycle.
func TestPolicyGatedAccounting(t *testing.T) {
	cfg := policyTestConfig()
	cfg.Policy = gatePolicy{threshold: 1}
	st, err := MustNew(cfg, loopProgram(1<<30), bpred.NewGshare(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.GatedCycles == 0 {
		t.Fatal("gating policy never gated")
	}
	if got := st.CycleAccounts[BucketGated]; got != st.GatedCycles {
		t.Errorf("BucketGated %d != GatedCycles %d", got, st.GatedCycles)
	}
	if err := st.CycleAccounts.CheckInvariant(st.Cycles); err != nil {
		t.Errorf("cycle accounting broken under policy gating: %v", err)
	}
}

// TestPolicyFresh: a stateful policy (Fresh implementer) must not share
// run state across Sims built from the same Config value.
func TestPolicyFresh(t *testing.T) {
	shared := &statefulPolicy{}
	cfg := policyTestConfig()
	cfg.Policy = shared
	prog := loopProgram(1 << 30)
	if _, err := MustNew(cfg, prog, bpred.NewGshare(12)).Run(); err != nil {
		t.Fatal(err)
	}
	if shared.consults != 0 {
		t.Fatalf("Config.Policy instance was consulted directly (%d times); New must take a Fresh copy",
			shared.consults)
	}
}

// TestSteadyStateAllocsWithPolicy extends the PR 4 allocation gate to
// the policy path: an installed (value-type) policy must keep the
// steady-state hot loop allocation-free, and the nil-policy runs pinned
// by TestSteadyStateAllocs cover the fast path.
func TestSteadyStateAllocsWithPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	cfg.Policy = gatePolicy{threshold: 2}
	sim := steadySim(t, cfg)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			if _, err := sim.Tick(true); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Tick with policy allocates: %.2f allocs per 1000 cycles, want 0", avg)
	}
}

// BenchmarkPolicyOverheadNil pins the nil-policy hot path — the
// configuration every non-policy experiment runs — so benchgate catches
// any regression the policy hook introduces (<5% enforced against
// BENCH_PIPELINE.json).
func BenchmarkPolicyOverheadNil(b *testing.B) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	benchTick(b, cfg)
}

// BenchmarkPolicyOverheadGate measures the per-cycle cost of an
// installed gating policy (one FetchSignal snapshot + interface call).
func BenchmarkPolicyOverheadGate(b *testing.B) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	cfg.Policy = gatePolicy{threshold: 2}
	benchTick(b, cfg)
}
