package pipeline

import "specctrl/internal/obs"

// simGauges holds the pre-resolved obs instruments one Sim publishes
// into, so the periodic publish is pure atomic stores with no registry
// lookups or allocation.
type simGauges struct {
	cycles    *obs.Gauge
	committed *obs.Gauge
	wrongPath *obs.Gauge
	squashes  *obs.Gauge
	branches  *obs.Gauge
	ipc       *obs.Gauge
	mispRate  *obs.Gauge
	buckets   [NumCycleBuckets]*obs.Gauge
	ests      []estGauges
}

// estGauges is one estimator's live committed-quadrant view: the raw
// quadrant counts plus the paper's four derived metrics.
type estGauges struct {
	chc, ihc, clc, ilc   *obs.Gauge
	sens, spec, pvp, pvn *obs.Gauge
}

// newSimGauges registers this run's series under the base label set,
// one estimator label per ConfStats entry.
func newSimGauges(reg *obs.Registry, base obs.Labels, ests []ConfStats) *simGauges {
	g := &simGauges{
		cycles:    reg.Gauge("specctrl_sim_cycles", base),
		committed: reg.Gauge("specctrl_sim_committed_instructions", base),
		wrongPath: reg.Gauge("specctrl_sim_wrong_path_instructions", base),
		squashes:  reg.Gauge("specctrl_sim_squashes", base),
		branches:  reg.Gauge("specctrl_sim_committed_branches", base),
		ipc:       reg.Gauge("specctrl_sim_ipc", base),
		mispRate:  reg.Gauge("specctrl_sim_mispredict_rate", base),
	}
	for b := CycleBucket(0); b < NumCycleBuckets; b++ {
		g.buckets[b] = reg.Gauge("specctrl_sim_cycle_bucket",
			base.With("bucket", b.String()))
	}
	g.ests = make([]estGauges, len(ests))
	for i, e := range ests {
		l := base.With("estimator", e.Name)
		g.ests[i] = estGauges{
			chc:  reg.Gauge("specctrl_sim_conf_quadrant_chc", l),
			ihc:  reg.Gauge("specctrl_sim_conf_quadrant_ihc", l),
			clc:  reg.Gauge("specctrl_sim_conf_quadrant_clc", l),
			ilc:  reg.Gauge("specctrl_sim_conf_quadrant_ilc", l),
			sens: reg.Gauge("specctrl_sim_conf_sens", l),
			spec: reg.Gauge("specctrl_sim_conf_spec", l),
			pvp:  reg.Gauge("specctrl_sim_conf_pvp", l),
			pvn:  reg.Gauge("specctrl_sim_conf_pvn", l),
		}
	}
	return g
}

// publish pushes the run's current statistics into the registry and
// progress view. Called every Config.MetricsInterval cycles and once
// from Finish; everything it touches is atomic, so concurrent HTTP
// scrapes see consistent single values mid-run.
func (s *Sim) publish() {
	st := &s.stats
	if g := s.gauges; g != nil {
		g.cycles.SetUint(st.Cycles)
		g.committed.SetUint(st.Committed)
		g.wrongPath.SetUint(st.WrongPath)
		g.squashes.SetUint(st.Squashes)
		g.branches.SetUint(st.CommittedBr)
		g.ipc.Set(st.IPC())
		g.mispRate.Set(st.CommittedQ.MispredictRate())
		for b := CycleBucket(0); b < NumCycleBuckets; b++ {
			g.buckets[b].SetUint(st.CycleAccounts[b])
		}
		for i := range g.ests {
			q := st.Confidence[i].CommittedQ
			eg := &g.ests[i]
			eg.chc.SetUint(q.Chc)
			eg.ihc.SetUint(q.Ihc)
			eg.clc.SetUint(q.Clc)
			eg.ilc.SetUint(q.Ilc)
			eg.sens.Set(q.Sens())
			eg.spec.Set(q.Spec())
			eg.pvp.Set(q.PVP())
			eg.pvn.Set(q.PVN())
		}
	}
	if p := s.cfg.Progress; p != nil {
		p.Update(st.Committed, st.Cycles, st.CommittedBr, st.CommittedQ.Incorrect())
	}
}
