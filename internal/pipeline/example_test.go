package pipeline_test

import (
	"fmt"
	"log"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/workload"
)

// Run one benchmark on gshare with two estimators attached and read the
// committed-branch quadrants. Estimators observe the run without
// influencing it, so any number can share one simulation.
func Example() {
	w, err := workload.ByName("m88ksim")
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 200_000

	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS), conf.SatCounters{}}
	sim, err := pipeline.New(cfg, w.Build(1<<30), bpred.NewGshare(12))
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, cs := range st.Confidence {
		fmt.Println(cs.Name, cs.CommittedQ.Compute())
	}
	fmt.Printf("mispredict rate %.1f%%\n", st.MispredictRate()*100)
	// Output:
	// JRS+(t=15) sens= 88% spec=100% pvp=100% pvn=  8%
	// SatCnt sens= 99% spec=  2% pvp= 99% pvn=  2%
	// mispredict rate 1.0%
}
