package pipeline

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/obs"
)

// nullTracer is the cheapest possible obs.Tracer: it measures the cost
// the pipeline itself adds when tracing is wired up, with no sink work.
type nullTracer struct{ n int }

func (t *nullTracer) Branch(obs.BranchEvent) { t.n++ }
func (t *nullTracer) Close() error           { return nil }

// warmTicks runs the simulator until its steady state: all ring
// buffers, the memory journal, and predictor tables at their final
// footprint. 20k cycles covers many squash/refill cycles of the
// random-branch loop.
const warmTicks = 20_000

func steadySim(t testing.TB, cfg Config) *Sim {
	t.Helper()
	sim := MustNew(cfg, loopProgram(1<<30), bpred.NewGshare(12))
	for i := 0; i < warmTicks; i++ {
		if done, err := sim.Tick(true); err != nil || done {
			t.Fatalf("warm-up ended early (done=%v, err=%v)", done, err)
		}
	}
	return sim
}

// TestSteadyStateAllocs is the allocation-regression gate for the
// per-cycle hot path: after warm-up, Tick must not allocate at all.
// Before the pending queue became a ring buffer, this path allocated
// on nearly every fetched branch (~1.4M allocations per 200k-committed
// run); any nonzero count here means a regression to that regime.
func TestSteadyStateAllocs(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS), conf.SatCounters{}}
	sim := steadySim(t, cfg)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			if _, err := sim.Tick(true); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Tick allocates: %.2f allocs per 1000 cycles, want 0", avg)
	}
}

// TestSteadyStateAllocsWithTracer: attaching an obs tracer must not
// reintroduce per-event heap traffic — the event struct is passed by
// value and must not escape.
func TestSteadyStateAllocsWithTracer(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	tr := &nullTracer{}
	cfg.Tracer = tr
	sim := steadySim(t, cfg)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			if _, err := sim.Tick(true); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Tick with tracer allocates: %.2f allocs per 1000 cycles, want 0", avg)
	}
	if tr.n == 0 {
		t.Fatal("tracer saw no events; the measurement is vacuous")
	}
}

// TestSteadyStateAllocsAllPredictors pins the zero-alloc property for
// every predictor the grid uses, both the devirtualized fast paths
// (gshare, mcfarling, sag) and the interface fallback.
func TestSteadyStateAllocsAllPredictors(t *testing.T) {
	preds := map[string]func() bpred.Predictor{
		"gshare":    func() bpred.Predictor { return bpred.NewGshare(12) },
		"mcfarling": func() bpred.Predictor { return bpred.NewMcFarling(12) },
		"sag":       func() bpred.Predictor { return bpred.NewSAg(11, 13) },
		"bimodal":   func() bpred.Predictor { return bpred.NewBimodal(12) },
	}
	for name, mk := range preds {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.MaxCycles = 0
			cfg.Estimators = []conf.Estimator{conf.SatCounters{}}
			sim := MustNew(cfg, loopProgram(1<<30), mk())
			for i := 0; i < warmTicks; i++ {
				if done, err := sim.Tick(true); err != nil || done {
					t.Fatalf("warm-up ended early (done=%v, err=%v)", done, err)
				}
			}
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < 1000; i++ {
					if _, err := sim.Tick(true); err != nil {
						t.Fatal(err)
					}
				}
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per 1000 cycles, want 0", name, avg)
			}
		})
	}
}

// benchTick measures the per-cycle cost of the simulator loop in
// steady state — the number the whole experiment pipeline's wall
// clock is made of.
func benchTick(b *testing.B, cfg Config) {
	sim := steadySim(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Tick(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineTick(b *testing.B) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	benchTick(b, cfg)
}

func BenchmarkPipelineTickTraced(b *testing.B) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	cfg.Tracer = &nullTracer{}
	benchTick(b, cfg)
}

func BenchmarkPipelineTickNoEstimators(b *testing.B) {
	cfg := testConfig()
	cfg.MaxCycles = 0
	benchTick(b, cfg)
}
