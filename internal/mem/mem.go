// Package mem implements the simulated machine's data memory: a sparse,
// word-addressed 64-bit memory backed by fixed-size pages.
//
// Unwritten words read as zero. The address space is the full signed
// 64-bit range (negative addresses are legal and simply map to their own
// pages), which lets workloads place tables anywhere without a loader.
//
// Memory also supports a lightweight undo journal so callers (such as a
// dual-path execution model) can speculatively write and later roll back.
package mem

const (
	pageShift = 10
	pageSize  = 1 << pageShift // words per page
	pageMask  = pageSize - 1
)

type page [pageSize]int64

// Memory is a sparse word-addressed memory. The zero value is not usable;
// call New.
type Memory struct {
	pages map[int64]*page

	// last is a one-entry page cache: simulated access streams are
	// strongly page-local, so most Read/Write calls resolve without the
	// map lookup that otherwise dominates memory-model time.
	lastKey  int64
	lastPage *page

	// journal, when non-nil, records the previous value of every word
	// written so the write can be undone.
	journal []journalEntry
	active  bool

	reads, writes uint64
}

type journalEntry struct {
	addr int64
	prev int64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[int64]*page)}
}

// NewFromImage returns a memory initialized with the given image
// (for example a Program's data segment).
func NewFromImage(image map[int64]int64) *Memory {
	m := New()
	for addr, v := range image {
		m.Write(addr, v)
	}
	m.reads, m.writes = 0, 0
	return m
}

func (m *Memory) pageFor(addr int64, create bool) *page {
	key := addr >> pageShift
	if p := m.lastPage; p != nil && key == m.lastKey {
		return p
	}
	p := m.pages[key]
	if p == nil && create {
		p = new(page)
		m.pages[key] = p
	}
	if p != nil {
		m.lastKey, m.lastPage = key, p
	}
	return p
}

// Read returns the word at addr; unwritten words are zero.
func (m *Memory) Read(addr int64) int64 {
	m.reads++
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// Write stores v at addr.
func (m *Memory) Write(addr int64, v int64) {
	m.writes++
	p := m.pageFor(addr, true)
	if m.active {
		m.journal = append(m.journal, journalEntry{addr, p[addr&pageMask]})
	}
	p[addr&pageMask] = v
}

// BeginJournal starts recording writes so they can be undone with
// Rollback. Nested journals are not supported; starting a new journal
// discards the old one.
func (m *Memory) BeginJournal() {
	m.journal = m.journal[:0]
	m.active = true
}

// Rollback undoes every write recorded since BeginJournal, in reverse
// order, and stops journaling.
func (m *Memory) Rollback() {
	for i := len(m.journal) - 1; i >= 0; i-- {
		e := m.journal[i]
		p := m.pageFor(e.addr, true)
		p[e.addr&pageMask] = e.prev
	}
	m.journal = m.journal[:0]
	m.active = false
}

// Commit discards the journal, keeping all writes, and stops journaling.
func (m *Memory) Commit() {
	m.journal = m.journal[:0]
	m.active = false
}

// Clone returns a deep copy of the memory contents. Journal state is not
// cloned. Access counters are reset in the copy.
func (m *Memory) Clone() *Memory {
	c := New()
	for key, p := range m.pages {
		cp := *p
		c.pages[key] = &cp
	}
	return c
}

// Stats returns the cumulative read and write counts.
func (m *Memory) Stats() (reads, writes uint64) { return m.reads, m.writes }

// Pages returns the number of allocated pages (for footprint reporting).
func (m *Memory) Pages() int { return len(m.pages) }
