package mem

import (
	"testing"
	"testing/quick"

	"specctrl/internal/rng"
)

func TestReadUnwrittenIsZero(t *testing.T) {
	m := New()
	for _, addr := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if v := m.Read(addr); v != 0 {
			t.Errorf("Read(%d) = %d, want 0", addr, v)
		}
	}
}

func TestWriteRead(t *testing.T) {
	m := New()
	m.Write(5, 42)
	m.Write(-7, -9)
	m.Write(1<<30, 100)
	if m.Read(5) != 42 || m.Read(-7) != -9 || m.Read(1<<30) != 100 {
		t.Error("Write/Read mismatch")
	}
}

func TestPageBoundaries(t *testing.T) {
	m := New()
	// Adjacent words straddling a page boundary must not alias.
	m.Write(pageSize-1, 1)
	m.Write(pageSize, 2)
	m.Write(-1, 3)
	m.Write(0, 4)
	if m.Read(pageSize-1) != 1 || m.Read(pageSize) != 2 {
		t.Error("positive boundary aliasing")
	}
	if m.Read(-1) != 3 || m.Read(0) != 4 {
		t.Error("negative boundary aliasing")
	}
}

func TestNegativeAddressMasking(t *testing.T) {
	// addr & pageMask on negative addresses must index within the page.
	m := New()
	for addr := int64(-3 * pageSize); addr < 3*pageSize; addr += 7 {
		m.Write(addr, addr)
	}
	for addr := int64(-3 * pageSize); addr < 3*pageSize; addr += 7 {
		if m.Read(addr) != addr {
			t.Fatalf("Read(%d) = %d", addr, m.Read(addr))
		}
	}
}

func TestNewFromImage(t *testing.T) {
	m := NewFromImage(map[int64]int64{1: 10, 2: 20})
	if m.Read(1) != 10 || m.Read(2) != 20 {
		t.Error("image not applied")
	}
	r, w := m.Stats()
	if r != 1+1 && w != 0 {
		// Reads above count; writes during init must not.
		t.Errorf("stats after image: reads=%d writes=%d", r, w)
	}
}

func TestJournalRollback(t *testing.T) {
	m := New()
	m.Write(1, 100)
	m.BeginJournal()
	m.Write(1, 200)
	m.Write(2, 300)
	m.Write(1, 400) // second write to same word
	m.Rollback()
	if m.Read(1) != 100 {
		t.Errorf("addr 1 after rollback = %d, want 100", m.Read(1))
	}
	if m.Read(2) != 0 {
		t.Errorf("addr 2 after rollback = %d, want 0", m.Read(2))
	}
}

func TestJournalCommit(t *testing.T) {
	m := New()
	m.BeginJournal()
	m.Write(3, 33)
	m.Commit()
	if m.Read(3) != 33 {
		t.Error("commit lost write")
	}
	// After Commit, writes are no longer journaled.
	m.Write(3, 44)
	m.Rollback() // no-op journal
	if m.Read(3) != 44 {
		t.Error("rollback after commit undid un-journaled write")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.Write(10, 1)
	c := m.Clone()
	m.Write(10, 2)
	c.Write(11, 3)
	if c.Read(10) != 1 {
		t.Error("clone saw original's write")
	}
	if m.Read(11) != 0 {
		t.Error("original saw clone's write")
	}
}

func TestRollbackRestoresRandomState(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		m := New()
		// Baseline writes.
		base := make(map[int64]int64)
		for i := 0; i < 50; i++ {
			addr := int64(g.Intn(4096)) - 2048
			v := int64(g.Uint64())
			m.Write(addr, v)
			base[addr] = v
		}
		m.BeginJournal()
		for i := 0; i < 100; i++ {
			m.Write(int64(g.Intn(4096))-2048, int64(g.Uint64()))
		}
		m.Rollback()
		for addr, v := range base {
			if m.Read(addr) != v {
				return false
			}
		}
		// Spot-check words not in base are zero.
		for addr := int64(-2048); addr < 2048; addr++ {
			if _, ok := base[addr]; !ok && m.Read(addr) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatsCount(t *testing.T) {
	m := New()
	m.Write(0, 1)
	m.Write(1, 2)
	m.Read(0)
	r, w := m.Stats()
	if r != 1 || w != 2 {
		t.Errorf("Stats = (%d,%d), want (1,2)", r, w)
	}
}

func TestPagesFootprint(t *testing.T) {
	m := New()
	if m.Pages() != 0 {
		t.Error("fresh memory has pages")
	}
	m.Write(0, 1)
	m.Write(pageSize*5, 1)
	if m.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", m.Pages())
	}
}

func BenchmarkWriteRead(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		addr := int64(i & 0xffff)
		m.Write(addr, int64(i))
		_ = m.Read(addr)
	}
}
