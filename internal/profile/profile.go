// Package profile implements the training pass behind the paper's static
// confidence estimator (§3, "Static Estimator").
//
// The static estimator needs per-branch-site *prediction accuracy of the
// underlying branch predictor* — not a plain taken/not-taken profile —
// because confidence concerns whether the predictor will be right, which
// depends on predictor state. The paper obtains this from a predictor
// simulation (or ProfileMe-style hardware feedback); we run the pipeline
// simulator over the program with site statistics enabled and threshold
// the per-site accuracy.
//
// Following the paper, profiles are *self-profiled*: the same program and
// input train and evaluate the estimator, making the reported numbers a
// best case for the static technique.
package profile

import (
	"fmt"
	"sort"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
)

// Options configures a profiling pass.
type Options struct {
	// Threshold is the accuracy at or above which a branch site is
	// considered high confidence; the paper uses 0.90.
	Threshold float64
	// MinSamples guards against noisy sites: sites with fewer committed
	// executions than this default to low confidence (0 disables).
	MinSamples uint64
}

// DefaultOptions returns the paper's configuration: a 90% threshold.
func DefaultOptions() Options { return Options{Threshold: 0.90} }

// Collect runs prog on a fresh instance of the predictor under cfg with
// site statistics enabled and returns the static estimator built from the
// resulting profile. The predictor passed in is consumed by the training
// run and must not be reused for evaluation — build a fresh one.
func Collect(cfg pipeline.Config, prog *isa.Program, pred bpred.Predictor, opts Options) (conf.Static, error) {
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return conf.Static{}, fmt.Errorf("profile: threshold %v out of [0,1]", opts.Threshold)
	}
	cfg.CollectSiteStats = true
	cfg.RecordEvents = false
	sim, err := pipeline.New(cfg, prog, pred)
	if err != nil {
		return conf.Static{}, fmt.Errorf("profile: bad pipeline config: %w", err)
	}
	st, err := sim.Run()
	if err != nil {
		return conf.Static{}, fmt.Errorf("profile: training run failed: %w", err)
	}
	return FromSites(st.Sites, opts), nil
}

// FromSites builds the static estimator from an existing site-accuracy
// profile (e.g. one extracted from a previous run's Stats).
func FromSites(sites map[int64]*pipeline.SiteStats, opts Options) conf.Static {
	hc := make(map[int64]bool, len(sites))
	for pc, s := range sites {
		if s.Total < opts.MinSamples {
			continue
		}
		if s.Accuracy() >= opts.Threshold {
			hc[pc] = true
		}
	}
	return conf.Static{HighConfidence: hc, Threshold: opts.Threshold}
}

// TuneGoal selects which metric Tune drives toward a target value.
type TuneGoal int

const (
	// GoalSPEC tunes for a target specificity: catch at least the
	// requested fraction of mispredictions as low confidence, marking
	// as few correct predictions low confidence as possible.
	GoalSPEC TuneGoal = iota
	// GoalPVN tunes for a target predictive value of a negative test:
	// make low-confidence marks at least the requested pure, covering
	// as many mispredictions as possible.
	GoalPVN
)

// Tune implements the paper's §5 future-work item: "an algorithm to
// 'tune' static confidence estimation to achieve a particular goal for
// PVN or SPEC". Instead of one fixed accuracy threshold, it chooses the
// set of branch sites to mark low confidence directly from the profile:
//
//   - Sites are sorted by profiled accuracy, least accurate first —
//     the site order that adds the most mispredictions per false alarm.
//   - GoalSPEC: walk the list marking sites low confidence until the
//     marked sites cover at least target of all profiled mispredictions.
//     This maximizes SENS subject to the SPEC floor (greedy-optimal:
//     any other site set reaching the same coverage marks at least as
//     many correct predictions low confidence).
//   - GoalPVN: walk the same list while the running misprediction mass
//     over marked executions stays at or above target; stop before the
//     marked set's purity would fall below it.
//
// The returned estimator is exactly as implementable as the paper's
// static scheme: one hint bit per branch site.
func Tune(sites map[int64]*pipeline.SiteStats, goal TuneGoal, target float64) (conf.Static, error) {
	if target <= 0 || target > 1 {
		return conf.Static{}, fmt.Errorf("profile: tune target %v out of (0,1]", target)
	}
	type site struct {
		pc      int64
		acc     float64
		correct uint64
		total   uint64
	}
	ordered := make([]site, 0, len(sites))
	var totalMisp uint64
	for pc, s := range sites {
		ordered = append(ordered, site{pc: pc, acc: s.Accuracy(), correct: s.Correct, total: s.Total})
		totalMisp += s.Total - s.Correct
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].acc != ordered[j].acc {
			return ordered[i].acc < ordered[j].acc
		}
		return ordered[i].pc < ordered[j].pc // deterministic ties
	})

	// Every site starts high confidence; mark low confidence greedily.
	hc := make(map[int64]bool, len(sites))
	for pc := range sites {
		hc[pc] = true
	}
	var markedMisp, markedTotal uint64
	for _, s := range ordered {
		misp := s.total - s.correct
		switch goal {
		case GoalSPEC:
			if totalMisp == 0 || float64(markedMisp)/float64(totalMisp) >= target {
				return conf.Static{HighConfidence: hc, Threshold: target}, nil
			}
		case GoalPVN:
			// Adding this site must keep the marked set's purity at or
			// above the target.
			newPurity := float64(markedMisp+misp) / float64(markedTotal+s.total)
			if newPurity < target {
				return conf.Static{HighConfidence: hc, Threshold: target}, nil
			}
		default:
			return conf.Static{}, fmt.Errorf("profile: unknown tune goal %d", goal)
		}
		delete(hc, s.pc) // mark low confidence
		markedMisp += misp
		markedTotal += s.total
	}
	return conf.Static{HighConfidence: hc, Threshold: target}, nil
}
