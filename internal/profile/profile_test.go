package profile

import (
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/rng"
)

// mixedProgram has one almost-always-correct branch site and one
// coin-flip site, so the profile must separate them.
func mixedProgram(iters int) *isa.Program {
	b := isa.NewBuilder("mixed")
	g := rng.New(3)
	for i := int64(0); i < 512; i++ {
		b.Word(3000+i, int64(g.Intn(2)))
	}
	b.Li(1, 0).Li(2, int32(iters)).Li(4, 3000)
	b.Label("loop")
	b.Andi(5, 1, 511)
	b.Add(5, 4, 5)
	b.Ld(6, 5, 0)
	b.Beq(6, isa.Zero, "skip") // hard site
	b.Addi(3, 3, 1)
	b.Label("skip")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop") // easy site
	b.Halt()
	return b.MustBuild()
}

func cfg() pipeline.Config {
	c := pipeline.DefaultConfig()
	c.MaxCycles = 10_000_000
	return c
}

func TestCollectSeparatesSites(t *testing.T) {
	p := mixedProgram(5000)
	est, err := Collect(cfg(), p, bpred.NewGshare(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.HighConfidence) == 0 {
		t.Fatal("profile marked no sites high confidence")
	}
	// Find the two branch PCs: the loop-back branch must be HC, the
	// data-dependent one must not.
	var hardPC, easyPC int64 = -1, -1
	for pc, in := range p.Code {
		if in.Op == isa.OpBeq {
			hardPC = int64(pc)
		}
		if in.Op == isa.OpBlt {
			easyPC = int64(pc)
		}
	}
	if !est.HighConfidence[easyPC] {
		t.Error("loop-back site should be high confidence")
	}
	if est.HighConfidence[hardPC] {
		t.Error("coin-flip site should be low confidence")
	}
}

func TestCollectRejectsBadThreshold(t *testing.T) {
	if _, err := Collect(cfg(), mixedProgram(10), bpred.NewGshare(8), Options{Threshold: 1.5}); err == nil {
		t.Error("accepted threshold > 1")
	}
}

func TestMinSamples(t *testing.T) {
	sites := map[int64]*pipeline.SiteStats{
		1: {Correct: 2, Total: 2},      // perfect but tiny
		2: {Correct: 990, Total: 1000}, // well sampled
	}
	est := FromSites(sites, Options{Threshold: 0.9, MinSamples: 10})
	if est.HighConfidence[1] {
		t.Error("under-sampled site should default to low confidence")
	}
	if !est.HighConfidence[2] {
		t.Error("well-sampled accurate site should be high confidence")
	}
}

func TestSelfProfiledEstimatorBeatsChance(t *testing.T) {
	// Evaluate the static estimator on the same program/input (the
	// paper's self-profiled best case): its PVP must exceed the base
	// accuracy and its committed quadrant must be populated.
	p := mixedProgram(5000)
	est, err := Collect(cfg(), p, bpred.NewGshare(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.Estimators = []conf.Estimator{est}
	sim := pipeline.MustNew(c, p, bpred.NewGshare(12))
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	q := st.Confidence[0].CommittedQ
	if q.PVP() <= q.Accuracy() {
		t.Errorf("static PVP %.3f should exceed base accuracy %.3f", q.PVP(), q.Accuracy())
	}
}

func TestTuneGoalSPEC(t *testing.T) {
	// Synthetic profile: three site classes with distinct accuracies.
	sites := map[int64]*pipeline.SiteStats{
		1: {Correct: 500, Total: 1000}, // 50% — worst
		2: {Correct: 850, Total: 1000}, // 85%
		3: {Correct: 990, Total: 1000}, // 99% — best
	}
	// Total mispredictions: 500+150+10 = 660.
	// Target SPEC 0.7 => cover >= 462 mispredictions: site 1 alone
	// covers 500 -> enough; sites 2,3 stay high confidence.
	est, err := Tune(sites, GoalSPEC, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if est.HighConfidence[1] {
		t.Error("worst site should be low confidence")
	}
	if !est.HighConfidence[2] || !est.HighConfidence[3] {
		t.Error("good sites should stay high confidence")
	}
	// Target SPEC 0.95 => need 627: site 1 (500) + site 2 (150) = 650.
	est, err = Tune(sites, GoalSPEC, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est.HighConfidence[1] || est.HighConfidence[2] {
		t.Error("two worst sites should be low confidence at SPEC 0.95")
	}
	if !est.HighConfidence[3] {
		t.Error("best site should stay high confidence")
	}
}

func TestTuneGoalPVN(t *testing.T) {
	sites := map[int64]*pipeline.SiteStats{
		1: {Correct: 400, Total: 1000}, // 60% mispredict
		2: {Correct: 800, Total: 1000}, // 20% mispredict
		3: {Correct: 990, Total: 1000}, // 1% mispredict
	}
	// Target PVN 0.5: site 1 alone gives purity 0.6 >= 0.5; adding
	// site 2 gives (600+200)/2000 = 0.4 < 0.5 -> stop after site 1.
	est, err := Tune(sites, GoalPVN, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.HighConfidence[1] {
		t.Error("site 1 should be marked low confidence")
	}
	if !est.HighConfidence[2] || !est.HighConfidence[3] {
		t.Error("sites 2,3 would dilute purity below target")
	}
	// Target PVN 0.35: sites 1+2 give 0.4 >= 0.35; adding site 3 gives
	// (800+10)/3000 = 0.27 < 0.35 -> stop after two.
	est, err = Tune(sites, GoalPVN, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if est.HighConfidence[1] || est.HighConfidence[2] {
		t.Error("sites 1,2 should be low confidence at PVN 0.35")
	}
	if !est.HighConfidence[3] {
		t.Error("site 3 should stay high confidence")
	}
}

func TestTuneRejectsBadInput(t *testing.T) {
	if _, err := Tune(nil, GoalSPEC, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := Tune(nil, GoalSPEC, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, err := Tune(map[int64]*pipeline.SiteStats{1: {Correct: 1, Total: 2}}, TuneGoal(9), 0.5); err == nil {
		t.Error("unknown goal accepted")
	}
}

func TestTuneAchievesSPECEndToEnd(t *testing.T) {
	// Profile a real program, tune for SPEC targets, and verify the
	// achieved SPEC on a fresh evaluation run meets (or nearly meets —
	// self-profiling noise) each target.
	p := mixedProgram(8000)
	c := cfg()
	c.CollectSiteStats = true
	train := pipeline.MustNew(c, p, bpred.NewGshare(12))
	tst, err := train.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.3, 0.6, 0.9} {
		est, err := Tune(tst.Sites, GoalSPEC, target)
		if err != nil {
			t.Fatal(err)
		}
		rc := cfg()
		rc.Estimators = []conf.Estimator{est}
		sim := pipeline.MustNew(rc, p, bpred.NewGshare(12))
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := st.Confidence[0].CommittedQ.Spec()
		if got < target-0.12 {
			t.Errorf("target SPEC %.2f: achieved only %.3f", target, got)
		}
	}
}
