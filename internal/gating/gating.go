// Package gating implements pipeline gating, the power-conservation
// application of confidence estimation the paper motivates (§2.2,
// "Power conservation", and its companion ISCA'98 paper by Manne et al.).
//
// Mechanism: the front end counts in-flight *low-confidence* branches;
// when the count reaches the gating threshold, instruction fetch is
// gated (stalled) until a branch resolves. Gating trades a small
// slowdown for a large reduction in *extra work* — wrong-path
// instructions that would be fetched, decoded and executed only to be
// squashed. The confidence estimator's SPEC and PVN govern the trade:
// high SPEC exposes more gating opportunities, high PVN keeps the
// slowdown low because the gated paths really were doomed.
//
// The gated machine is driven by a speculation-control policy installed
// into the pipeline (pipeline.Config.Policy); Run defaults to the
// paper's policy.Gating at Config.Threshold, and callers can substitute
// any other policy (throttling, boosting) through policy.Factories.
package gating

import (
	"fmt"
	"strings"

	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
)

// Config parameterizes a gating run.
type Config struct {
	// Threshold gates fetch while the number of in-flight
	// low-confidence branches is >= Threshold. Manne et al. found small
	// thresholds (1-2) effective. It parameterizes the default
	// policy.Gating; a Factories.Policy override supersedes it.
	Threshold int
	// Pipeline is the underlying machine configuration.
	Pipeline pipeline.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Threshold < 1 {
		return fmt.Errorf("gating: threshold %d < 1", c.Threshold)
	}
	return c.Pipeline.Validate()
}

// Result compares a policied run against its unpolicied baseline on the
// same program, predictor configuration and estimator configuration.
type Result struct {
	Baseline *pipeline.Stats
	Gated    *pipeline.Stats
}

// ExtraWorkReduction returns the fraction of wrong-path instructions
// eliminated by gating; degenerate runs with no baseline wrong-path
// work report 0.
func (r *Result) ExtraWorkReduction() float64 {
	if r.Baseline.WrongPath == 0 {
		return 0
	}
	return 1 - float64(r.Gated.WrongPath)/float64(r.Baseline.WrongPath)
}

// Slowdown returns the relative execution-time increase of the gated run
// (cycles per committed instruction, so capped runs compare fairly).
// Degenerate runs — either side committing nothing, or a zero-cycle
// baseline — report 0 rather than dividing by it.
func (r *Result) Slowdown() float64 {
	if r.Baseline.Cycles == 0 || r.Baseline.Committed == 0 || r.Gated.Committed == 0 {
		return 0
	}
	base := float64(r.Baseline.Cycles) / float64(r.Baseline.Committed)
	gated := float64(r.Gated.Cycles) / float64(r.Gated.Committed)
	return gated/base - 1
}

// ratio is a/b, or 0 when b is 0 (degenerate capped runs).
func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Run executes the baseline and the policied simulation from the given
// factories (fresh instances per run; tables start cold in both). The
// policy defaults to the paper's pipeline gating at cfg.Threshold when
// f.Policy is nil.
func Run(cfg Config, prog *isa.Program, f policy.Factories) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	pcfg := cfg.Pipeline
	pcfg.Estimators = []conf.Estimator{f.Estimator()}
	base, err := pipeline.New(pcfg, prog, f.Predictor())
	if err != nil {
		return nil, fmt.Errorf("gating baseline: %w", err)
	}
	baseStats, err := base.Run()
	if err != nil {
		return nil, fmt.Errorf("gating baseline: %w", err)
	}

	gcfg := cfg.Pipeline
	gcfg.Estimators = []conf.Estimator{f.Estimator()}
	if gcfg.Policy = f.NewPolicy(); gcfg.Policy == nil {
		gcfg.Policy = policy.Gating{Threshold: cfg.Threshold}
	}
	sim, err := pipeline.New(gcfg, prog, f.Predictor())
	if err != nil {
		return nil, fmt.Errorf("gating run: %w", err)
	}
	gatedStats, err := sim.Run()
	if err != nil {
		return nil, fmt.Errorf("gating run: %w", err)
	}
	return &Result{Baseline: baseStats, Gated: gatedStats}, nil
}

// SuiteRow is one benchmark's gating outcome.
type SuiteRow struct {
	Name               string
	BaselineExtraWork  float64 // wrong-path / committed instructions
	GatedExtraWork     float64
	ExtraWorkReduction float64
	Slowdown           float64
	GatedCycles        uint64
}

// SuiteResult aggregates gating over a set of workloads.
type SuiteResult struct {
	Estimator string
	Threshold int
	Rows      []SuiteRow
}

// EvaluateSuite runs gating over the given programs with per-run fresh
// components from the factories.
func EvaluateSuite(cfg Config, progs map[string]*isa.Program, f policy.Factories, order []string) (*SuiteResult, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	res := &SuiteResult{Estimator: f.Estimator().Name(), Threshold: cfg.Threshold}
	for _, name := range order {
		prog, ok := progs[name]
		if !ok {
			return nil, fmt.Errorf("gating: missing program %q", name)
		}
		r, err := Run(cfg, prog, f)
		if err != nil {
			return nil, fmt.Errorf("gating %s: %w", name, err)
		}
		res.Rows = append(res.Rows, SuiteRow{
			Name:               name,
			BaselineExtraWork:  ratio(r.Baseline.WrongPath, r.Baseline.Committed),
			GatedExtraWork:     ratio(r.Gated.WrongPath, r.Gated.Committed),
			ExtraWorkReduction: r.ExtraWorkReduction(),
			Slowdown:           r.Slowdown(),
			GatedCycles:        r.Gated.GatedCycles,
		})
	}
	return res, nil
}

// Render prints the gating table.
func (r *SuiteResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline gating: estimator %s, threshold %d\n", r.Estimator, r.Threshold)
	fmt.Fprintf(&b, "%-9s %11s %11s %10s %9s\n",
		"app", "extra-work", "gated-ew", "reduction", "slowdown")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %10.1f%% %10.1f%% %9.1f%% %8.2f%%\n",
			row.Name, row.BaselineExtraWork*100, row.GatedExtraWork*100,
			row.ExtraWorkReduction*100, row.Slowdown*100)
	}
	return b.String()
}
