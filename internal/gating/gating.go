// Package gating implements pipeline gating, the power-conservation
// application of confidence estimation the paper motivates (§2.2,
// "Power conservation", and its companion ISCA'98 paper by Manne et al.).
//
// Mechanism: the front end counts in-flight *low-confidence* branches;
// when the count reaches the gating threshold, instruction fetch is
// gated (stalled) until a branch resolves. Gating trades a small
// slowdown for a large reduction in *extra work* — wrong-path
// instructions that would be fetched, decoded and executed only to be
// squashed. The confidence estimator's SPEC and PVN govern the trade:
// high SPEC exposes more gating opportunities, high PVN keeps the
// slowdown low because the gated paths really were doomed.
package gating

import (
	"fmt"
	"strings"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
)

// Config parameterizes a gating run.
type Config struct {
	// Threshold gates fetch while the number of in-flight
	// low-confidence branches is >= Threshold. Manne et al. found small
	// thresholds (1-2) effective.
	Threshold int
	// Pipeline is the underlying machine configuration.
	Pipeline pipeline.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Threshold < 1 {
		return fmt.Errorf("gating: threshold %d < 1", c.Threshold)
	}
	return c.Pipeline.Validate()
}

// Result compares a gated run against its ungated baseline on the same
// program, predictor configuration and estimator configuration.
type Result struct {
	Baseline *pipeline.Stats
	Gated    *pipeline.Stats
}

// ExtraWorkReduction returns the fraction of wrong-path instructions
// eliminated by gating.
func (r *Result) ExtraWorkReduction() float64 {
	if r.Baseline.WrongPath == 0 {
		return 0
	}
	return 1 - float64(r.Gated.WrongPath)/float64(r.Baseline.WrongPath)
}

// Slowdown returns the relative execution-time increase of the gated run
// (cycles per committed instruction, so capped runs compare fairly).
func (r *Result) Slowdown() float64 {
	base := float64(r.Baseline.Cycles) / float64(r.Baseline.Committed)
	gated := float64(r.Gated.Cycles) / float64(r.Gated.Committed)
	return gated/base - 1
}

// Run executes the baseline and the gated simulation. newPred and newEst
// must build fresh instances (tables start cold in both runs).
func Run(cfg Config, prog *isa.Program, newPred func() bpred.Predictor, newEst func() conf.Estimator) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pcfg := cfg.Pipeline
	pcfg.Estimators = []conf.Estimator{newEst()}
	base, err := pipeline.New(pcfg, prog, newPred())
	if err != nil {
		return nil, fmt.Errorf("gating baseline: %w", err)
	}
	baseStats, err := base.Run()
	if err != nil {
		return nil, fmt.Errorf("gating baseline: %w", err)
	}

	pcfg.Estimators = []conf.Estimator{newEst()}
	sim, err := pipeline.New(pcfg, prog, newPred())
	if err != nil {
		return nil, fmt.Errorf("gating run: %w", err)
	}
	for {
		allow := sim.PendingLowConf() < cfg.Threshold
		done, err := sim.Tick(allow)
		if err != nil {
			return nil, fmt.Errorf("gating run: %w", err)
		}
		if done {
			break
		}
	}
	return &Result{Baseline: baseStats, Gated: sim.Finish()}, nil
}

// SuiteRow is one benchmark's gating outcome.
type SuiteRow struct {
	Name               string
	BaselineExtraWork  float64 // wrong-path / committed instructions
	GatedExtraWork     float64
	ExtraWorkReduction float64
	Slowdown           float64
	GatedCycles        uint64
}

// SuiteResult aggregates gating over a set of workloads.
type SuiteResult struct {
	Estimator string
	Threshold int
	Rows      []SuiteRow
}

// EvaluateSuite runs gating over the given programs.
func EvaluateSuite(cfg Config, progs map[string]*isa.Program, newPred func() bpred.Predictor, newEst func() conf.Estimator, order []string) (*SuiteResult, error) {
	res := &SuiteResult{Estimator: newEst().Name(), Threshold: cfg.Threshold}
	for _, name := range order {
		prog, ok := progs[name]
		if !ok {
			return nil, fmt.Errorf("gating: missing program %q", name)
		}
		r, err := Run(cfg, prog, newPred, newEst)
		if err != nil {
			return nil, fmt.Errorf("gating %s: %w", name, err)
		}
		res.Rows = append(res.Rows, SuiteRow{
			Name:               name,
			BaselineExtraWork:  float64(r.Baseline.WrongPath) / float64(r.Baseline.Committed),
			GatedExtraWork:     float64(r.Gated.WrongPath) / float64(r.Gated.Committed),
			ExtraWorkReduction: r.ExtraWorkReduction(),
			Slowdown:           r.Slowdown(),
			GatedCycles:        r.Gated.GatedCycles,
		})
	}
	return res, nil
}

// Render prints the gating table.
func (r *SuiteResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline gating: estimator %s, threshold %d\n", r.Estimator, r.Threshold)
	fmt.Fprintf(&b, "%-9s %11s %11s %10s %9s\n",
		"app", "extra-work", "gated-ew", "reduction", "slowdown")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %10.1f%% %10.1f%% %9.1f%% %8.2f%%\n",
			row.Name, row.BaselineExtraWork*100, row.GatedExtraWork*100,
			row.ExtraWorkReduction*100, row.Slowdown*100)
	}
	return b.String()
}
