package gating

import (
	"errors"
	"strings"
	"testing"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/workload"
)

func pcfg() pipeline.Config {
	c := pipeline.DefaultConfig()
	c.MaxCommitted = 150_000
	c.MaxCycles = 20_000_000
	return c
}

func buildProg(t *testing.T, name string) *isa.Program {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build(1 << 30)
}

func newGshare() bpred.Predictor { return bpred.NewGshare(12) }

func newJRS() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }

func jrsFactories() policy.Factories {
	return policy.Factories{Predictor: newGshare, Estimator: newJRS}
}

func TestGatingReducesExtraWork(t *testing.T) {
	// On a hostile workload (go), gating at the threshold-2 operating
	// point must remove a substantial share of wrong-path work at a
	// modest slowdown (the Manne et al. trade-off).
	cfg := Config{Threshold: 2, Pipeline: pcfg()}
	r, err := Run(cfg, buildProg(t, "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if red := r.ExtraWorkReduction(); red < 0.15 {
		t.Errorf("extra-work reduction %.3f, want >= 15%%", red)
	}
	if slow := r.Slowdown(); slow > 0.15 {
		t.Errorf("slowdown %.3f too high", slow)
	}
	if r.Gated.GatedCycles == 0 {
		t.Error("no cycles were actually gated")
	}
	// The aggressive threshold-1 point trades much more slowdown for
	// much more reduction.
	r1, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, buildProg(t, "go"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExtraWorkReduction() <= r.ExtraWorkReduction() {
		t.Error("threshold 1 should remove more extra work than threshold 2")
	}
}

func TestGatingPreservesArchitecturalWork(t *testing.T) {
	// Gating changes timing only: committed counts must match.
	cfg := Config{Threshold: 1, Pipeline: pcfg()}
	r, err := Run(cfg, buildProg(t, "compress"), jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	// Both runs cap at MaxCommitted; committed work must agree within a
	// fetch group.
	diff := int64(r.Gated.Committed) - int64(r.Baseline.Committed)
	if diff < -8 || diff > 8 {
		t.Errorf("committed work differs: baseline %d gated %d",
			r.Baseline.Committed, r.Gated.Committed)
	}
}

func TestHigherThresholdGatesLess(t *testing.T) {
	prog := buildProg(t, "go")
	r1, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, prog, jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(Config{Threshold: 3, Pipeline: pcfg()}, prog, jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if r3.Gated.GatedCycles >= r1.Gated.GatedCycles {
		t.Errorf("threshold 3 gated %d cycles, threshold 1 gated %d; want fewer",
			r3.Gated.GatedCycles, r1.Gated.GatedCycles)
	}
	if r3.Slowdown() > r1.Slowdown()+0.01 {
		t.Errorf("threshold 3 slowdown %.3f should not exceed threshold 1 %.3f",
			r3.Slowdown(), r1.Slowdown())
	}
}

func TestBetterEstimatorGatesBetter(t *testing.T) {
	// Gating with AlwaysLC gates on every branch — big slowdown.
	// Gating with a real estimator must hurt much less per unit of
	// extra work removed.
	prog := buildProg(t, "compress")
	blind, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, prog, policy.Factories{
		Predictor: newGshare,
		Estimator: func() conf.Estimator { return conf.Always{High: false} },
	})
	if err != nil {
		t.Fatal(err)
	}
	jrs, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, prog, jrsFactories())
	if err != nil {
		t.Fatal(err)
	}
	if jrs.Slowdown() >= blind.Slowdown() {
		t.Errorf("JRS slowdown %.3f should beat AlwaysLC %.3f",
			jrs.Slowdown(), blind.Slowdown())
	}
}

func TestEvaluateSuite(t *testing.T) {
	progs := map[string]*isa.Program{}
	order := []string{"compress", "go"}
	for _, n := range order {
		progs[n] = buildProg(t, n)
	}
	res, err := EvaluateSuite(Config{Threshold: 1, Pipeline: pcfg()}, progs, jrsFactories(), order)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("suite rows = %d", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "compress") || !strings.Contains(out, "reduction") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestEvaluateSuiteMissingProgram(t *testing.T) {
	_, err := EvaluateSuite(Config{Threshold: 1, Pipeline: pcfg()},
		map[string]*isa.Program{}, jrsFactories(), []string{"compress"})
	if err == nil {
		t.Error("missing program not reported")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Threshold: 0, Pipeline: pcfg()}).Validate(); err == nil {
		t.Error("threshold 0 accepted")
	}
	if err := (Config{Threshold: 1, Pipeline: pipeline.Config{}}).Validate(); err == nil {
		t.Error("invalid pipeline accepted")
	}
}

func TestDegenerateRatiosReportZero(t *testing.T) {
	// Capped or empty runs must never divide by a zero baseline: every
	// degenerate shape reports 0 instead of NaN/Inf.
	cases := []struct {
		name string
		r    Result
	}{
		{"all zero", Result{Baseline: &pipeline.Stats{}, Gated: &pipeline.Stats{}}},
		{"zero baseline cycles", Result{
			Baseline: &pipeline.Stats{Committed: 10},
			Gated:    &pipeline.Stats{Committed: 10, Cycles: 5},
		}},
		{"zero baseline committed", Result{
			Baseline: &pipeline.Stats{Cycles: 5},
			Gated:    &pipeline.Stats{Committed: 10, Cycles: 5},
		}},
		{"zero gated committed", Result{
			Baseline: &pipeline.Stats{Committed: 10, Cycles: 5},
			Gated:    &pipeline.Stats{Cycles: 5},
		}},
		{"zero baseline wrong-path", Result{
			Baseline: &pipeline.Stats{Committed: 10, Cycles: 5},
			Gated:    &pipeline.Stats{Committed: 10, Cycles: 5, WrongPath: 3},
		}},
	}
	for _, tc := range cases {
		if got := tc.r.Slowdown(); got != 0 {
			t.Errorf("%s: Slowdown() = %v, want 0", tc.name, got)
		}
		if got := tc.r.ExtraWorkReduction(); got != 0 {
			t.Errorf("%s: ExtraWorkReduction() = %v, want 0", tc.name, got)
		}
	}
	// Sanity: a non-degenerate result still computes real ratios.
	r := Result{
		Baseline: &pipeline.Stats{Committed: 100, Cycles: 100, WrongPath: 40},
		Gated:    &pipeline.Stats{Committed: 100, Cycles: 110, WrongPath: 10},
	}
	if got := r.Slowdown(); got < 0.099 || got > 0.101 {
		t.Errorf("Slowdown() = %v, want ~0.10", got)
	}
	if got := r.ExtraWorkReduction(); got != 0.75 {
		t.Errorf("ExtraWorkReduction() = %v, want 0.75", got)
	}
}

func TestRunRejectsIncompleteFactories(t *testing.T) {
	var missing *policy.MissingFieldError
	_, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, buildProg(t, "compress"),
		policy.Factories{Predictor: newGshare})
	if !errors.As(err, &missing) || missing.Field != "Estimator" {
		t.Errorf("Run without estimator: err = %v, want MissingFieldError{Estimator}", err)
	}
	_, err = EvaluateSuite(Config{Threshold: 1, Pipeline: pcfg()},
		map[string]*isa.Program{}, policy.Factories{Estimator: newJRS}, nil)
	if !errors.As(err, &missing) || missing.Field != "Predictor" {
		t.Errorf("EvaluateSuite without predictor: err = %v, want MissingFieldError{Predictor}", err)
	}
}

func TestRunWithExplicitPolicy(t *testing.T) {
	// A Factories.Policy override supersedes Config.Threshold: a
	// full-width throttle gates nothing even at threshold 1.
	f := jrsFactories()
	f.Policy = func() pipeline.Policy {
		return policy.Throttle{Levels: []int{16}}
	}
	r, err := Run(Config{Threshold: 1, Pipeline: pcfg()}, buildProg(t, "go"), f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gated.GatedCycles != 0 {
		t.Errorf("full-width throttle gated %d cycles, want 0", r.Gated.GatedCycles)
	}
}
