module specctrl

go 1.22
