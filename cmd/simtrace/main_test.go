package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"specctrl/internal/trace"
)

func TestNewPredictor(t *testing.T) {
	for _, name := range []string{"gshare", "mcfarling", "sag"} {
		if _, err := newPredictor(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := newPredictor("oracle"); err == nil {
		t.Error("unknown predictor accepted")
	}
}

// TestRecordAndSummarize is the command's smoke test: record a short
// run to both sinks, then read the binary trace back and summarize it.
func TestRecordAndSummarize(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "out.trc")
	jsonl := filepath.Join(dir, "out.jsonl")
	err := doRecord(recordOptions{
		workload:  "compress",
		predictor: "gshare",
		binPath:   bin,
		jsonlPath: jsonl,
		committed: 20_000,
		iters:     1 << 30,
	})
	if err != nil {
		t.Fatalf("doRecord: %v", err)
	}

	f, err := os.Open(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatalf("reading recorded trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	s := trace.Summarize(events)
	if s.Committed == 0 {
		t.Errorf("summary has no committed branches: %+v", s)
	}

	// The JSONL mirror of the same stream must be valid, non-empty JSON
	// lines.
	jf, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	lines := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("invalid JSONL line: %s", sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("no JSONL events written")
	}

	// -summarize over the file must succeed end-to-end.
	if err := doSummarize(bin); err != nil {
		t.Errorf("doSummarize: %v", err)
	}
}

func TestRecordUnknownWorkload(t *testing.T) {
	err := doRecord(recordOptions{
		workload:  "no-such-benchmark",
		predictor: "gshare",
		binPath:   filepath.Join(t.TempDir(), "x.trc"),
		committed: 1000,
		iters:     1,
	})
	if err == nil {
		t.Error("unknown workload accepted")
	}
}
