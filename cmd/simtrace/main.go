// Command simtrace works with workload programs and branch traces:
// disassemble a benchmark, record a speculative branch trace (the
// paper's §3.1 instrumentation) to a compact binary file, or summarize
// a recorded trace without re-simulating.
//
// Usage:
//
//	simtrace -w compress -dis                     # disassemble
//	simtrace -w gcc -record /tmp/gcc.trc -committed 500000
//	simtrace -summarize /tmp/gcc.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/trace"
	"specctrl/internal/workload"
)

func main() {
	var (
		wname     = flag.String("w", "", "workload name (see -listw)")
		listw     = flag.Bool("listw", false, "list workloads")
		dis       = flag.Bool("dis", false, "disassemble the workload")
		record    = flag.String("record", "", "simulate and write the branch trace to this file")
		summarize = flag.String("summarize", "", "read a trace file and print its summary")
		committed = flag.Uint64("committed", 500_000, "committed instructions for -record")
		iters     = flag.Int("iters", 1<<30, "workload outer iterations")
		pred      = flag.String("pred", "gshare", "predictor for -record: gshare|mcfarling|sag")
	)
	flag.Parse()

	switch {
	case *listw:
		for _, w := range workload.Suite() {
			fmt.Printf("%-9s %s\n", w.Name, w.Description)
		}
	case *summarize != "":
		if err := doSummarize(*summarize); err != nil {
			fail(err)
		}
	case *dis:
		w, err := workload.ByName(*wname)
		if err != nil {
			fail(err)
		}
		p := w.Build(*iters)
		fmt.Printf("%s: %d instructions, %d data words\n\n",
			p.Name, len(p.Code), len(p.Data))
		fmt.Print(isa.Disassemble(p, nil))
	case *record != "":
		if err := doRecord(*wname, *pred, *record, *committed, *iters); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "simtrace: nothing to do (try -listw, -dis, -record, -summarize)")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simtrace: %v\n", err)
	os.Exit(1)
}

func newPredictor(name string) (bpred.Predictor, error) {
	switch name {
	case "gshare":
		return bpred.NewGshare(12), nil
	case "mcfarling":
		return bpred.NewMcFarling(12), nil
	case "sag":
		return bpred.NewSAg(11, 13), nil
	}
	return nil, fmt.Errorf("unknown predictor %q", name)
}

func doRecord(wname, predName, path string, committed uint64, iters int) error {
	w, err := workload.ByName(wname)
	if err != nil {
		return err
	}
	pred, err := newPredictor(predName)
	if err != nil {
		return err
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = committed
	cfg.RecordEvents = true
	sim := pipeline.New(cfg, w.Build(iters), pred, conf.NewJRS(conf.DefaultJRS))
	st, err := sim.Run()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, st.Events); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d events (%d bytes, %.1f B/event) to %s\n",
		len(st.Events), info.Size(), float64(info.Size())/float64(len(st.Events)), path)
	return nil
}

func doSummarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("events      %d\n", s.Events)
	fmt.Printf("committed   %d\n", s.Committed)
	fmt.Printf("wrong-path  %d\n", s.WrongPath)
	if s.Committed > 0 {
		fmt.Printf("mispredict  %d (%.1f%%)\n", s.Mispredict,
			100*float64(s.Mispredict)/float64(s.Committed))
		fmt.Printf("low-conf    %d (%.1f%%)\n", s.LowConf,
			100*float64(s.LowConf)/float64(s.Committed))
	}
	return nil
}
