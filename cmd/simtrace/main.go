// Command simtrace works with workload programs and branch traces:
// disassemble a benchmark, record a speculative branch trace (the
// paper's §3.1 instrumentation) to a compact binary file or a JSONL
// debugging stream, or summarize a recorded trace without
// re-simulating.
//
// Usage:
//
//	simtrace -w compress -dis                     # disassemble
//	simtrace -w gcc -record /tmp/gcc.trc -committed 500000
//	simtrace -w gcc -record-jsonl /tmp/gcc.jsonl  # greppable events
//	simtrace -w gcc -record-branches /tmp/gcc.spbt # ingestable via -ingest-trace
//	simtrace -summarize /tmp/gcc.trc
//
// Recording streams events through the simulator's obs.Tracer hook —
// the binary writer, the JSONL writer, and the SPBT branch-trace
// writer (see docs/WORKLOADS.md) are sinks on the same stream and can
// run simultaneously. Like simctrl, long recordings
// accept -progress and -metrics-addr for live observation.
package main

import (
	"flag"
	"fmt"
	"os"

	"specctrl/internal/bpred"
	"specctrl/internal/cliflags"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/obs"
	"specctrl/internal/obs/span"
	"specctrl/internal/pipeline"
	"specctrl/internal/synth"
	"specctrl/internal/trace"
	"specctrl/internal/workload"
)

func main() {
	var (
		wname       = flag.String("w", "", "workload name (see -listw)")
		listw       = flag.Bool("listw", false, "list workloads")
		dis         = flag.Bool("dis", false, "disassemble the workload")
		record      = flag.String("record", "", "simulate and write the binary branch trace to this file")
		recordJSONL = flag.String("record-jsonl", "", "simulate and write JSONL branch events to this file")
		recordSPBT  = flag.String("record-branches", "", "simulate and write an SPBT branch trace to this file (load back with -ingest-trace)")
		summarize   = flag.String("summarize", "", "read a trace file and print its summary")
		committed   = cliflags.Committed(flag.CommandLine, 500_000, "committed instructions for -record")
		iters       = flag.Int("iters", 1<<30, "workload outer iterations")
		pred        = flag.String("pred", "gshare", "predictor for -record: gshare|mcfarling|sag")
		obsFlags    = cliflags.RegisterObs(flag.CommandLine)
		traceF      = cliflags.RegisterTrace(flag.CommandLine)
	)
	flag.Parse()

	switch {
	case *listw:
		for _, w := range workload.Suite() {
			fmt.Printf("%-9s %s\n", w.Name, w.Description)
		}
	case *summarize != "":
		if err := doSummarize(*summarize); err != nil {
			fail(err)
		}
	case *dis:
		w, err := workload.ByName(*wname)
		if err != nil {
			fail(err)
		}
		p := w.Build(*iters)
		fmt.Printf("%s: %d instructions, %d data words\n\n",
			p.Name, len(p.Code), len(p.Data))
		fmt.Print(isa.Disassemble(p, nil))
	case *record != "" || *recordJSONL != "" || *recordSPBT != "":
		opts := recordOptions{
			workload:  *wname,
			predictor: *pred,
			binPath:   *record,
			jsonlPath: *recordJSONL,
			spbtPath:  *recordSPBT,
			committed: *committed,
			iters:     *iters,
			obs:       obsFlags,
			trace:     traceF,
		}
		if err := doRecord(opts); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "simtrace: nothing to do (try -listw, -dis, -record, -record-jsonl, -record-branches, -summarize)")
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "simtrace: %v\n", err)
	os.Exit(1)
}

func newPredictor(name string) (bpred.Predictor, error) {
	switch name {
	case "gshare":
		return bpred.NewGshare(12), nil
	case "mcfarling":
		return bpred.NewMcFarling(12), nil
	case "sag":
		return bpred.NewSAg(11, 13), nil
	}
	return nil, fmt.Errorf("unknown predictor %q", name)
}

type recordOptions struct {
	workload, predictor string
	binPath, jsonlPath  string
	spbtPath            string
	committed           uint64
	iters               int
	obs                 cliflags.Obs
	trace               cliflags.Trace
}

func doRecord(o recordOptions) error {
	w, err := workload.ByName(o.workload)
	if err != nil {
		return err
	}
	pred, err := newPredictor(o.predictor)
	if err != nil {
		return err
	}

	// Assemble the sink stack: binary and/or JSONL, fanned out from
	// the simulator's tracer hook.
	var sinks []obs.Tracer
	var binSink *trace.Sink
	var jsonlSink *obs.JSONL
	var spbtSink *synth.TraceSink
	var files []*os.File
	for _, f := range []struct {
		path string
		mk   func(f *os.File)
	}{
		{o.binPath, func(f *os.File) { binSink = trace.NewSink(f); sinks = append(sinks, binSink) }},
		{o.jsonlPath, func(f *os.File) { jsonlSink = obs.NewJSONL(f); sinks = append(sinks, jsonlSink) }},
		{o.spbtPath, func(f *os.File) { spbtSink = synth.NewTraceSink(f); sinks = append(sinks, spbtSink) }},
	} {
		if f.path == "" {
			continue
		}
		file, err := os.Create(f.path)
		if err != nil {
			return err
		}
		files = append(files, file)
		f.mk(file)
	}

	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = o.committed
	cfg.Tracer = obs.MultiSink(sinks...)

	tracer := o.trace.NewTracer()
	started, err := o.obs.Start("simtrace", os.Stderr, tracer)
	if err != nil {
		return err
	}
	defer started.Stop()
	if started.Registry != nil {
		cfg.Metrics = started.Registry
		cfg.MetricsLabels = obs.Labels{"workload": w.Name, "predictor": o.predictor}
	}
	if started.Run != nil {
		cfg.Progress = started.Run
		cfg.Progress.StartRun(w.Name+"/"+o.predictor, o.committed)
	}

	cfg.Estimators = []conf.Estimator{conf.NewJRS(conf.DefaultJRS)}
	sim, err := pipeline.New(cfg, w.Build(o.iters), pred)
	if err != nil {
		return err
	}
	rec := tracer.Root("record:"+w.Name+"/"+o.predictor,
		span.Str("workload", w.Name), span.Str("predictor", o.predictor))
	_, runErr := sim.Run()
	rec.End()
	if runErr != nil {
		return runErr
	}
	if t := cfg.Tracer; t != nil {
		if err := t.Close(); err != nil {
			return err
		}
	}
	for _, f := range files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	if binSink != nil {
		info, err := os.Stat(o.binPath)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d events (%d bytes, %.1f B/event) to %s\n",
			binSink.Count(), info.Size(),
			float64(info.Size())/float64(max(binSink.Count(), 1)), o.binPath)
	}
	if jsonlSink != nil {
		fmt.Printf("wrote %d JSONL events to %s\n", jsonlSink.Count(), o.jsonlPath)
	}
	if spbtSink != nil {
		info, err := os.Stat(o.spbtPath)
		if err != nil {
			return err
		}
		fmt.Printf("wrote SPBT branch trace (%d bytes) to %s; load with -ingest-trace\n",
			info.Size(), o.spbtPath)
	}
	return o.trace.Finish(tracer, "simtrace", os.Stderr)
}

func doSummarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	s := trace.Summarize(events)
	fmt.Printf("events      %d\n", s.Events)
	fmt.Printf("committed   %d\n", s.Committed)
	fmt.Printf("wrong-path  %d\n", s.WrongPath)
	if s.Committed > 0 {
		fmt.Printf("mispredict  %d (%.1f%%)\n", s.Mispredict,
			100*float64(s.Mispredict)/float64(s.Committed))
		fmt.Printf("low-conf    %d (%.1f%%)\n", s.LowConf,
			100*float64(s.LowConf)/float64(s.Committed))
	}
	return nil
}
