package main

import (
	"errors"
	"strings"
	"testing"

	"specctrl/internal/experiments"
	"specctrl/internal/runner"
)

func TestOrderCoversRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range order {
		if _, ok := registry[name]; !ok {
			t.Errorf("order entry %q missing from registry", name)
		}
		if seen[name] {
			t.Errorf("order entry %q duplicated", name)
		}
		seen[name] = true
	}
	for name := range registry {
		if !seen[name] {
			t.Errorf("registry entry %q missing from -exp all order", name)
		}
	}
}

func TestRegistryDescriptions(t *testing.T) {
	for name, e := range registry {
		if e.desc == "" || e.fn == nil {
			t.Errorf("registry entry %q incomplete", name)
		}
	}
}

// TestShardOnlyCoverage proves every simulation-backed registry entry
// runs through the grid executor: under an active shard a grid driver
// must return ErrShardOnly instead of rendering. A sparse shard (most
// experiments own zero cells of it) keeps this fast.
func TestShardOnlyCoverage(t *testing.T) {
	p := experiments.TestParams()
	p.MaxCommitted = 40_000
	p.Shard = runner.Shard{Index: 63, Count: 64}
	p.Record = experiments.NewCellStore()
	for name, e := range registry {
		if name == "fig1" || name == "cost" {
			continue // analytic, no simulation grid
		}
		if _, err := e.fn(p); !errors.Is(err, experiments.ErrShardOnly) {
			t.Errorf("%s: got %v, want ErrShardOnly (driver bypasses the grid?)", name, err)
		}
	}
}

func TestAnalyticExperimentRuns(t *testing.T) {
	// fig1 and cost are pure computation: run them through the registry
	// path end-to-end.
	p := experiments.TestParams()
	for _, name := range []string{"fig1", "cost"} {
		r, err := registry[name].fn(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := r.Render()
		if !strings.Contains(out, "\n") || len(out) < 100 {
			t.Errorf("%s render suspiciously small:\n%s", name, out)
		}
	}
}
