package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"specctrl/internal/experiments"
	"specctrl/internal/serve"
)

func TestPrintRendered(t *testing.T) {
	cases := []struct{ in, want string }{
		{"table\n", "table\n\n"},   // single newline gets a blank line
		{"table\n\n", "table\n\n"}, // already framed: unchanged
		{"x", "x\n"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		printRendered(&buf, c.in)
		if buf.String() != c.want {
			t.Errorf("printRendered(%q) = %q, want %q", c.in, buf.String(), c.want)
		}
	}
}

// TestServerModeRoundTrip drives the -server client path end-to-end
// against a real in-process simserved: the analytic fig1 experiment
// (no simulation, so the test is fast) must render byte-identically to
// the local registry path.
func TestServerModeRoundTrip(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Addr:     "127.0.0.1:0",
		CacheDir: t.TempDir(),
		Jobs:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()

	var stdout, stderr bytes.Buffer
	err = runServerMode(serverOpts{
		base:         srv.URL(),
		names:        []string{"fig1", "cost"},
		verbose:      true,
		stdout:       &stdout,
		stderr:       &stderr,
		pollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("runServerMode: %v\nstderr:\n%s", err, stderr.String())
	}

	var want bytes.Buffer
	p := experiments.DefaultParams()
	for _, name := range []string{"fig1", "cost"} {
		r, err := experiments.Run(name, p)
		if err != nil {
			t.Fatal(err)
		}
		printRendered(&want, r.Render())
	}
	if stdout.String() != want.String() {
		t.Errorf("served output differs from local run:\n--- served ---\n%s\n--- local ---\n%s",
			stdout.String(), want.String())
	}
	if !strings.Contains(stderr.String(), "job done") {
		t.Errorf("verbose stream missing terminal job event:\n%s", stderr.String())
	}
}

func TestServerModeUnknownJobError(t *testing.T) {
	srv, err := serve.New(serve.Config{Addr: "127.0.0.1:0", CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	var stdout, stderr bytes.Buffer
	err = runServerMode(serverOpts{
		base:   srv.URL(),
		names:  []string{"definitely-not-an-experiment"},
		stdout: &stdout,
		stderr: &stderr,
	})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("got %v, want unknown-experiment server error", err)
	}
}
