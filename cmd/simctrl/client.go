// simserved client: the -server mode submits the requested experiments
// as one job, follows it to completion, and prints the rendered results
// exactly as a local run would (the server guarantees byte-identical
// output; printRendered guarantees byte-identical framing).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"specctrl/internal/obs/span"
	"specctrl/internal/serve"
	"specctrl/internal/synth"
)

type serverOpts struct {
	base      string // simserved base URL
	names     []string
	committed uint64
	cellsOut  string
	verbose   bool
	stdout    io.Writer
	stderr    io.Writer

	// synthN and synthProfiles parameterize the sweepspace experiment
	// server-side: profiles travel as vectors in the submission (the
	// server registers them before running the job).
	synthN        int
	synthProfiles []synth.Profile

	// tracer, when non-nil, opens a root span for the submission and
	// propagates its context to the server as a traceparent header, so
	// the served job's spans share this client's TraceID.
	tracer *span.Tracer

	// pollInterval throttles status polling (default 200ms).
	pollInterval time.Duration
}

// getJSON fetches url and decodes the 200 body into v; non-2xx bodies
// are surfaced as the server's error message.
func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return serverError(resp, body)
	}
	return json.Unmarshal(body, v)
}

// serverError turns a non-2xx response into a readable error,
// preferring the API's JSON error field.
func serverError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return fmt.Errorf("server: %s (retry after %ss)", e.Error, ra)
		}
		return fmt.Errorf("server: %s", e.Error)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

// runServerMode is the whole -server flow: submit, follow, render.
func runServerMode(o serverOpts) error {
	if o.pollInterval <= 0 {
		o.pollInterval = 200 * time.Millisecond
	}
	base := strings.TrimRight(o.base, "/")
	hc := &http.Client{}
	defer hc.CloseIdleConnections()

	root := o.tracer.Root("job", span.Str("server", base))
	defer root.End()

	req := serve.SubmitRequest{
		Version:       serve.APIVersion,
		Experiments:   o.names,
		Committed:     o.committed,
		SynthN:        o.synthN,
		SynthProfiles: o.synthProfiles,
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	post, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	post.Header.Set("Content-Type", "application/json")
	span.Inject(post.Header, root.Context())
	resp, err := hc.Do(post)
	if err != nil {
		return fmt.Errorf("submitting to %s: %w", base, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return serverError(resp, body)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		return fmt.Errorf("bad submit response: %w", err)
	}
	fmt.Fprintf(o.stderr, "simctrl: submitted %s to %s\n", sub.ID, base)

	if o.verbose {
		if err := streamEvents(hc, base+sub.Events, o.stderr); err != nil {
			fmt.Fprintf(o.stderr, "simctrl: event stream: %v (falling back to polling)\n", err)
		}
	}

	// Poll until terminal (the event stream, when used, already ended
	// at the terminal event — this then finishes on the first probe).
	var st serve.StatusResponse
	for {
		if err := getJSON(hc, base+sub.Status, &st); err != nil {
			return err
		}
		if st.State == string(serve.StateDone) || st.State == string(serve.StateFailed) ||
			st.State == string(serve.StateDrained) {
			break
		}
		time.Sleep(o.pollInterval)
	}
	fmt.Fprintf(o.stderr, "simctrl: job %s %s: %d cells (%d cached, %d simulated)\n",
		st.ID, st.State, st.Cells.Done, st.Cells.FromCache, st.Cells.Simulated)
	switch st.State {
	case string(serve.StateDone):
	case string(serve.StateDrained):
		if st.Checkpoint != "" {
			return fmt.Errorf("job %s drained by server shutdown; completed cells checkpointed at %s (server-side)", st.ID, st.Checkpoint)
		}
		return fmt.Errorf("job %s drained by server shutdown", st.ID)
	default:
		return fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}

	var res serve.ResultResponse
	if err := getJSON(hc, base+sub.Result, &res); err != nil {
		return err
	}
	for _, out := range res.Outputs {
		printRendered(o.stdout, out.Output)
	}

	if o.cellsOut != "" {
		resp, err := hc.Get(base + sub.Cells)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return serverError(resp, data)
		}
		if err := os.WriteFile(o.cellsOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "simctrl: wrote %d cells to %s\n", st.Cells.Done, o.cellsOut)
	}
	return nil
}

// streamEvents follows the job's NDJSON event stream, printing one
// line per cell/experiment until the terminal job event.
func streamEvents(hc *http.Client, url string, stderr io.Writer) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return serverError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e serve.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return err
		}
		switch e.Type {
		case "cell":
			src := "simulated"
			if e.Cached {
				src = "cached"
			}
			fmt.Fprintf(stderr, "cell %-40s %s (%.0fms)\n", e.Key, src, e.ElapsedMS)
		case "experiment":
			fmt.Fprintf(stderr, "experiment %s done\n", e.Name)
		case "job":
			fmt.Fprintf(stderr, "job %s\n", e.State)
		}
	}
	return sc.Err()
}
