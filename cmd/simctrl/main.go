// Command simctrl reproduces the tables and figures of "Confidence
// Estimation for Speculation Control" (Klauser, Grunwald, Manne,
// Pleszkun; ISCA 1998) on the built-in simulator and workload suite.
//
// Usage:
//
//	simctrl -exp table2                 # one experiment, default scale
//	simctrl -exp all -committed 5000000 # everything, bigger runs
//	simctrl -list                       # show available experiments
//
// Experiments are grids of independent cells (one simulation per
// workload × predictor × estimator-config point) executed on a
// work-stealing pool. -jobs N sets the pool width (default: all CPUs);
// output is byte-identical at every job count. A grid can also be split
// across machines:
//
//	simctrl -exp table2 -shard 0/2 -cells-out s0.json   # machine A
//	simctrl -exp table2 -shard 1/2 -cells-out s1.json   # machine B
//	simctrl -exp table2 -cells-in s0.json,s1.json       # merge + render
//
// Or submitted to a simserved instance instead of simulating locally —
// the server memoizes every cell in a content-addressed cache, so
// repeated grids render without simulating at all, byte-identical to
// the local run:
//
//	simctrl -server http://localhost:8344 -exp table2
//
// See docs/REGENERATING.md for the full regeneration workflow and the
// determinism guarantees behind it, and docs/SERVING.md for the
// service.
//
// Long runs are observable while they execute: -progress prints a
// periodic heartbeat (committed instructions, IPC, misprediction rate,
// ETA) to stderr, and -metrics-addr serves live Prometheus/JSON
// metrics plus expvar and pprof over HTTP:
//
//	simctrl -exp all -committed 50000000 -progress 2s -metrics-addr :9090
//	curl http://localhost:9090/metrics
//
// Output is the paper-style text table for each experiment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"specctrl/internal/cliflags"
	"specctrl/internal/experiments"
	"specctrl/internal/replay"
	"specctrl/internal/runner"
)

// printRendered writes one experiment's output, normalizing the
// trailing blank line exactly as the original serial CLI did. Both the
// local and -server paths go through it, which is what makes their
// stdout byte-identical.
func printRendered(w io.Writer, out string) {
	fmt.Fprint(w, out)
	if !strings.HasSuffix(out, "\n\n") {
		fmt.Fprintln(w)
	}
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		committed = cliflags.Committed(flag.CommandLine, 0, "committed instructions per run (0 = default 2M)")
		verbose   = flag.Bool("v", false, "print per-run progress to stderr")
		list      = flag.Bool("list", false, "list available experiments")
		obsFlags  = cliflags.RegisterObs(flag.CommandLine)
		jobs      = cliflags.Jobs(flag.CommandLine, runtime.NumCPU(), "parallel grid cells (output is identical at any value)")
		shard     = cliflags.Shard(flag.CommandLine)
		cellsOut  = cliflags.CellsOut(flag.CommandLine)
		cellsIn   = cliflags.CellsIn(flag.CommandLine)
		replayF   = cliflags.Replay(flag.CommandLine)
		cacheMB   = cliflags.TraceCacheMB(flag.CommandLine)
		traceF    = cliflags.RegisterTrace(flag.CommandLine)
		synthF    = cliflags.RegisterSynth(flag.CommandLine)
		policyF   = cliflags.RegisterPolicy(flag.CommandLine)
		server    = flag.String("server", "", "submit to a simserved base URL instead of simulating locally")
	)
	flag.Parse()

	if *list {
		entries := experiments.Experiments()
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
		for _, e := range entries {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "simctrl: -exp required (try -list)")
		flag.Usage()
		os.Exit(2)
	}

	names := []string{*exp}
	if *exp == "all" {
		names = nil
		for _, e := range experiments.Experiments() {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		if _, ok := experiments.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "simctrl: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
	}

	tracer := traceF.NewTracer()

	if *server != "" {
		if *shard != "" {
			fmt.Fprintln(os.Stderr, "simctrl: -shard is a local-run option; the server shards internally")
			os.Exit(2)
		}
		if *policyF.Spec != "" || *policyF.Levels != "" {
			// Job submissions carry no pipeline configuration; the
			// server's base policy is fixed at startup.
			fmt.Fprintf(os.Stderr, "simctrl: -%s is a local-run option; start simserved with it instead\n",
				cliflags.PolicyFlag)
			os.Exit(2)
		}
		if *synthF.Traces != "" {
			// Trace files cannot travel in a job submission (only
			// profile vectors can); ingest them on the server instead.
			fmt.Fprintf(os.Stderr, "simctrl: -%s is a local-run option; start simserved with it instead\n",
				cliflags.IngestTraceFlag)
			os.Exit(2)
		}
		synthProfiles, err := synthF.LoadProfiles()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(2)
		}
		err = runServerMode(serverOpts{
			base:          *server,
			names:         names,
			committed:     *committed,
			cellsOut:      *cellsOut,
			verbose:       *verbose,
			stdout:        os.Stdout,
			stderr:        os.Stderr,
			tracer:        tracer,
			synthN:        *synthF.N,
			synthProfiles: synthProfiles,
		})
		if ferr := traceF.Finish(tracer, "simctrl", os.Stderr); ferr != nil && err == nil {
			err = ferr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p := experiments.DefaultParams()
	if *committed > 0 {
		p.MaxCommitted = *committed
	}
	replayMode, err := cliflags.ParseReplay(*replayF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
		os.Exit(2)
	}
	p.Replay = replayMode
	synthWs, synthN, err := synthF.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
		os.Exit(2)
	}
	p.SynthN = synthN
	p.SynthWorkloads = synthWs
	pol, err := policyF.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
		os.Exit(2)
	}
	p.Pipeline.Policy = pol
	if *verbose {
		p.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	p.Jobs = *jobs
	if *shard != "" {
		sh, err := runner.ParseShard(*shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(2)
		}
		if *cellsOut == "" {
			fmt.Fprintln(os.Stderr, "simctrl: -shard produces no rendered output; use -cells-out to keep the shard's cells")
			os.Exit(2)
		}
		p.Shard = sh
	}
	if *cellsOut != "" {
		p.Record = experiments.NewCellStore()
	}
	if *cellsIn != "" {
		cells, err := cliflags.LoadCells(*cellsIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(1)
		}
		p.Cells = cells
	}
	started, err := obsFlags.Start("simctrl", os.Stderr, tracer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
		os.Exit(1)
	}
	defer started.Stop()
	p.Obs = started.Registry
	p.Run = started.Run
	p.Tracer = tracer
	if *cacheMB != 0 || p.Obs != nil {
		p.TraceCache = replay.NewCache(int64(*cacheMB)<<20, p.Obs)
		p.ArchCache = replay.NewArchCache(int64(*cacheMB)<<20, p.Obs)
	}

	for _, name := range names {
		// One root span per experiment: its cell, record, replay, and
		// merge spans all hang underneath in the exported trace.
		root := tracer.Root("exp:" + name)
		p.SpanParent = root.Context()
		r, err := experiments.Run(name, p)
		root.End()
		if errors.Is(err, experiments.ErrShardOnly) {
			fmt.Fprintf(os.Stderr, "simctrl: %s: shard %s computed (%d cells so far)\n",
				name, p.Shard, p.Record.Len())
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %s: %v\n", name, err)
			os.Exit(1)
		}
		printRendered(os.Stdout, r.Render())
	}
	if err := traceF.Finish(tracer, "simctrl", os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
		os.Exit(1)
	}
	if p.Record != nil {
		data, err := p.Record.MarshalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: encoding cells: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cellsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simctrl: wrote %d cells to %s\n", p.Record.Len(), *cellsOut)
	}
}
