// Command simctrl reproduces the tables and figures of "Confidence
// Estimation for Speculation Control" (Klauser, Grunwald, Manne,
// Pleszkun; ISCA 1998) on the built-in simulator and workload suite.
//
// Usage:
//
//	simctrl -exp table2                 # one experiment, default scale
//	simctrl -exp all -committed 5000000 # everything, bigger runs
//	simctrl -list                       # show available experiments
//
// Experiments are grids of independent cells (one simulation per
// workload × predictor × estimator-config point) executed on a
// work-stealing pool. -jobs N sets the pool width (default: all CPUs);
// output is byte-identical at every job count. A grid can also be split
// across machines:
//
//	simctrl -exp table2 -shard 0/2 -cells-out s0.json   # machine A
//	simctrl -exp table2 -shard 1/2 -cells-out s1.json   # machine B
//	simctrl -exp table2 -cells-in s0.json,s1.json       # merge + render
//
// See docs/REGENERATING.md for the full regeneration workflow and the
// determinism guarantees behind it.
//
// Long runs are observable while they execute: -progress prints a
// periodic heartbeat (committed instructions, IPC, misprediction rate,
// ETA) to stderr, and -metrics-addr serves live Prometheus/JSON
// metrics plus expvar and pprof over HTTP:
//
//	simctrl -exp all -committed 50000000 -progress 2s -metrics-addr :9090
//	curl http://localhost:9090/metrics
//
// Output is the paper-style text table for each experiment.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"specctrl/internal/experiments"
	"specctrl/internal/obs"
	"specctrl/internal/runner"
)

// renderer is any experiment result that can print itself.
type renderer interface{ Render() string }

// detailed swaps a Table2Result's renderer for the per-application view.
type detailed struct{ r *experiments.Table2Result }

func (d detailed) Render() string { return d.r.Render() + "\n" + d.r.RenderDetailed() }

// experimentFunc runs one experiment under the given parameters.
type experimentFunc func(p experiments.Params) (renderer, error)

var registry = map[string]struct {
	fn   experimentFunc
	desc string
}{
	"table1": {func(p experiments.Params) (renderer, error) { return experiments.Table1(p) },
		"program characteristics: committed vs all instructions, misprediction rates"},
	"table2": {func(p experiments.Params) (renderer, error) { return experiments.Table2(p) },
		"four confidence estimators x three predictors, suite means"},
	"table2-detail": {func(p experiments.Params) (renderer, error) {
		r, err := experiments.Table2(p)
		if err != nil {
			return nil, err
		}
		return detailed{r}, nil
	}, "table2 with per-application drill-down (the paper's [5] detail)"},
	"table3": {func(p experiments.Params) (renderer, error) { return experiments.Table3(p) },
		"Both-Strong vs Either-Strong saturating counters on McFarling"},
	"table4": {func(p experiments.Params) (renderer, error) { return experiments.Table4(p) },
		"misprediction-distance estimator vs JRS / SatCnt / Static"},
	"fig1": {func(p experiments.Params) (renderer, error) { return experiments.Fig1(p), nil },
		"analytic PVP/PVN parameter curves"},
	"fig3": {func(p experiments.Params) (renderer, error) { return experiments.Fig3(p) },
		"JRS base vs enhanced threshold sweep (gshare)"},
	"fig4": {func(p experiments.Params) (renderer, error) {
		return experiments.Fig45(p, experiments.GshareSpec())
	}, "JRS design space: MDC entries x threshold (gshare)"},
	"fig5": {func(p experiments.Params) (renderer, error) {
		return experiments.Fig45(p, experiments.McFarlingSpec())
	}, "JRS design space: MDC entries x threshold (McFarling)"},
	"fig6": {func(p experiments.Params) (renderer, error) {
		return experiments.FigDistance(p, experiments.GshareSpec(), false)
	}, "precise misprediction distance (gshare)"},
	"fig7": {func(p experiments.Params) (renderer, error) {
		return experiments.FigDistance(p, experiments.McFarlingSpec(), false)
	}, "precise misprediction distance (McFarling)"},
	"fig8": {func(p experiments.Params) (renderer, error) {
		return experiments.FigDistance(p, experiments.GshareSpec(), true)
	}, "perceived misprediction distance (gshare)"},
	"fig9": {func(p experiments.Params) (renderer, error) {
		return experiments.FigDistance(p, experiments.McFarlingSpec(), true)
	}, "perceived misprediction distance (McFarling)"},
	"misest": {func(p experiments.Params) (renderer, error) { return experiments.Misest(p) },
		"confidence mis-estimation clustering (section 4.1)"},
	"boost": {func(p experiments.Params) (renderer, error) {
		return experiments.Boost(p, experiments.GshareSpec(), 4)
	}, "consecutive-low-confidence boosting (section 4.2)"},
	"boost-mcf": {func(p experiments.Params) (renderer, error) {
		return experiments.Boost(p, experiments.McFarlingSpec(), 4)
	}, "boosting on the McFarling predictor"},
	"abl-width": {func(p experiments.Params) (renderer, error) { return experiments.AblationWidth(p) },
		"ablation: JRS miss-distance-counter width"},
	"abl-spechist": {func(p experiments.Params) (renderer, error) { return experiments.AblationSpecHistory(p) },
		"ablation: speculative vs non-speculative gshare history update"},
	"abl-gating": {func(p experiments.Params) (renderer, error) { return experiments.AblationGating(p) },
		"ablation: pipeline gating estimator x threshold design space"},
	"abl-indirect": {func(p experiments.Params) (renderer, error) { return experiments.AblationIndirect(p) },
		"ablation: perfect vs BTB/RAS-predicted indirect targets"},
	"cost": {func(p experiments.Params) (renderer, error) { return experiments.Cost(p), nil },
		"estimator implementation-cost inventory"},
	"cir": {func(p experiments.Params) (renderer, error) { return experiments.CIR(p) },
		"indexing-structure comparison: JRS vs CIR vs global-MDC-indexed CIR"},
	"jrsmcf": {func(p experiments.Params) (renderer, error) { return experiments.JRSMcf(p) },
		"future work: McFarling-structured two-table JRS"},
	"tuned": {func(p experiments.Params) (renderer, error) { return experiments.Tuned(p) },
		"future work: static confidence tuned to SPEC/PVN targets"},
	"metrics": {func(p experiments.Params) (renderer, error) { return experiments.MetricsCmp(p) },
		"section 2.1: paper metrics vs Jacobsen rate, with the rank inversion"},
	"abl-depth": {func(p experiments.Params) (renderer, error) { return experiments.AblationDepth(p) },
		"ablation: fetch-to-resolve depth vs speculation ratio, SAg staleness"},
	"patterns": {func(p experiments.Params) (renderer, error) { return experiments.Patterns(p) },
		"section 3.2: history-pattern dominance under gshare vs SAg"},
	"smt": {func(p experiments.Params) (renderer, error) { return experiments.SMTStudy(p) },
		"application: SMT fetch policies over thread mixes"},
	"eager": {func(p experiments.Params) (renderer, error) { return experiments.EagerStudy(p) },
		"application: eager-execution cost model estimator ranking"},
	"xinput": {func(p experiments.Params) (renderer, error) { return experiments.XInput(p) },
		"static estimator: self-profiled (paper's best case) vs cross-input training"},
	"auc": {func(p experiments.Params) (renderer, error) { return experiments.AUCStudy(p) },
		"estimator-family ROC AUC: threshold-independent comparison"},
}

// order fixes the presentation order for -exp all.
var order = []string{
	"table1", "metrics", "table2", "table2-detail", "fig1", "fig3", "fig4", "fig5",
	"table3", "fig6", "fig7", "fig8", "fig9", "table4", "misest", "boost",
	"boost-mcf", "cir", "auc", "patterns", "jrsmcf", "tuned", "xinput", "smt", "eager",
	"abl-width", "abl-spechist", "abl-gating", "abl-indirect", "abl-depth", "cost",
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		committed   = flag.Uint64("committed", 0, "committed instructions per run (0 = default 2M)")
		verbose     = flag.Bool("v", false, "print per-run progress to stderr")
		list        = flag.Bool("list", false, "list available experiments")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics/expvar/pprof on this address (e.g. :9090)")
		progress    = flag.Duration("progress", 0, "print a heartbeat to stderr at this interval (e.g. 1s; 0 = off)")
		jobs        = flag.Int("jobs", runtime.NumCPU(), "parallel grid cells (output is identical at any value)")
		shard       = flag.String("shard", "", "run only shard i of n grid cells, as i/n (requires -cells-out)")
		cellsOut    = flag.String("cells-out", "", "write computed grid cells to this JSON file")
		cellsIn     = flag.String("cells-in", "", "comma-separated cell JSON files to reuse instead of simulating")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-8s %s\n", n, registry[n].desc)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "simctrl: -exp required (try -list)")
		flag.Usage()
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	if *committed > 0 {
		p.MaxCommitted = *committed
	}
	if *verbose {
		p.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	p.Jobs = *jobs
	if *shard != "" {
		sh, err := runner.ParseShard(*shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(2)
		}
		if *cellsOut == "" {
			fmt.Fprintln(os.Stderr, "simctrl: -shard produces no rendered output; use -cells-out to keep the shard's cells")
			os.Exit(2)
		}
		p.Shard = sh
	}
	if *cellsOut != "" {
		p.Record = experiments.NewCellStore()
	}
	if *cellsIn != "" {
		p.Cells = map[string]experiments.CellResult{}
		for _, path := range strings.Split(*cellsIn, ",") {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
				os.Exit(1)
			}
			cells, err := experiments.UnmarshalCells(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "simctrl: %s: %v\n", path, err)
				os.Exit(1)
			}
			for k, c := range cells {
				p.Cells[k] = c
			}
		}
	}
	if *metricsAddr != "" {
		p.Obs = obs.NewRegistry()
		srv, err := obs.Serve(*metricsAddr, p.Obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "simctrl: serving metrics on %s/metrics (pprof on /debug/pprof/)\n", srv.URL())
	}
	if *progress > 0 {
		p.Run = obs.NewProgress()
		stop := obs.StartHeartbeat(os.Stderr, *progress, p.Run)
		defer stop()
	}

	names := []string{*exp}
	if *exp == "all" {
		names = order
	}
	for _, name := range names {
		entry, ok := registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "simctrl: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		r, err := entry.fn(p)
		if errors.Is(err, experiments.ErrShardOnly) {
			fmt.Fprintf(os.Stderr, "simctrl: %s: shard %s computed (%d cells so far)\n",
				name, p.Shard, p.Record.Len())
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %s: %v\n", name, err)
			os.Exit(1)
		}
		out := r.Render()
		fmt.Print(out)
		if !strings.HasSuffix(out, "\n\n") {
			fmt.Println()
		}
	}
	if p.Record != nil {
		data, err := p.Record.MarshalJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: encoding cells: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cellsOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "simctrl: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simctrl: wrote %d cells to %s\n", p.Record.Len(), *cellsOut)
	}
}
