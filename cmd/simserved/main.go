// Command simserved serves the experiment harness as a long-running
// simulation service (see internal/serve): clients submit jobs over a
// versioned HTTP API, every grid cell is memoized in a
// content-addressed on-disk cache, and a bounded admission queue
// applies backpressure (429 + Retry-After) when saturated.
//
// Usage:
//
//	simserved -addr :8344 -cache-dir /var/lib/simserved
//	simctrl -server http://localhost:8344 -exp table2    # submit + render
//	curl http://localhost:8344/metrics                   # live metrics
//
// The same port serves the job API (/v1/jobs...), readiness (/readyz),
// and the standard observability endpoints (/metrics, /metrics.json,
// /healthz, /buildinfo, /debug/pprof/). Results are byte-identical to
// running simctrl locally with the same parameters; repeated
// submissions are served entirely from the cache.
//
// SIGTERM or SIGINT drains gracefully: in-flight cells finish, every
// unfinished job's completed cells are checkpointed under -drain-dir as
// -cells-in-loadable dumps, and the process exits 0. See
// docs/SERVING.md for the API reference and cache semantics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specctrl/internal/cliflags"
	"specctrl/internal/experiments"
	"specctrl/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its environment injected: stderr for logs and an
// optional stop channel tests can signal instead of SIGTERM. It returns
// after a graceful drain.
func run(args []string, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("simserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8344", "listen address (use :0 for an ephemeral port)")
		addrFile  = fs.String("addr-file", "", "write the bound base URL to this file once listening")
		cacheDir  = fs.String("cache-dir", "simserved-cache", "content-addressed result cache directory")
		drainDir  = fs.String("drain-dir", "", "drain checkpoint directory (default: <cache-dir>/drain)")
		jobs      = cliflags.Jobs(fs, 0, "runner pool width per grid (0 = all CPUs)")
		jobConc   = fs.Int("job-concurrency", 2, "jobs executing concurrently")
		queue     = fs.Int("queue", 0, "admission queue depth (0 = 2x pool width)")
		jobTO     = fs.Duration("job-timeout", 0, "per-job execution timeout (0 = none)")
		retry     = fs.Duration("retry-after", 10*time.Second, "Retry-After hint on 429/503")
		committed = cliflags.Committed(fs, 0, "default committed instructions per run (0 = paper default 2M)")
		replayF   = cliflags.Replay(fs)
		cacheMB   = cliflags.TraceCacheMB(fs)
		traceF    = cliflags.RegisterTrace(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	replayMode, err := cliflags.ParseReplay(*replayF)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Addr:            *addr,
		CacheDir:        *cacheDir,
		DrainDir:        *drainDir,
		Jobs:            *jobs,
		JobConcurrency:  *jobConc,
		QueueDepth:      *queue,
		JobTimeout:      *jobTO,
		RetryAfter:      *retry,
		TraceCacheBytes: int64(*cacheMB) << 20,
		// serve.New installs a default tracer when the flags didn't ask
		// for one, so /debug/traces always works on a running server.
		Tracer: traceF.NewTracer(),
	}
	p := experiments.DefaultParams()
	if *committed > 0 {
		p.MaxCommitted = *committed
	}
	p.Replay = replayMode
	cfg.Params = p
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.URL()+"\n"), 0o644); err != nil {
			srv.Drain()
			return err
		}
	}
	fmt.Fprintf(stderr, "simserved: serving on %s (cache %s)\n", srv.URL(), *cacheDir)
	fmt.Fprintf(stderr, "simserved: job API /v1/jobs, metrics /metrics, readiness /readyz\n")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "simserved: %v: draining (in-flight cells finish, queued work is checkpointed)\n", sig)
	case <-stop:
		fmt.Fprintf(stderr, "simserved: stop requested: draining\n")
	}
	if err := srv.Drain(); err != nil {
		return err
	}
	if err := traceF.Finish(srv.Tracer(), "simserved", stderr); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: drained\n")
	return nil
}
