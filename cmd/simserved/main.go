// Command simserved serves the experiment harness as a long-running
// simulation service (see internal/serve): clients submit jobs over a
// versioned HTTP API, every grid cell is memoized in a
// content-addressed on-disk cache, and a bounded admission queue
// applies backpressure (429 + Retry-After) when saturated.
//
// Usage:
//
//	simserved -addr :8344 -cache-dir /var/lib/simserved
//	simctrl -server http://localhost:8344 -exp table2    # submit + render
//	curl http://localhost:8344/metrics                   # live metrics
//
// The same port serves the job API (/v1/jobs...), readiness (/readyz),
// and the standard observability endpoints (/metrics, /metrics.json,
// /healthz, /buildinfo, /debug/pprof/). Results are byte-identical to
// running simctrl locally with the same parameters; repeated
// submissions are served entirely from the cache.
//
// Cluster mode (see internal/cluster and docs/CLUSTER.md) spreads jobs
// across machines while keeping that byte-identity:
//
//	simserved -coordinator -addr :8344 -cache-dir /var/lib/simserved
//	simserved -worker -join http://head:8344 -addr :0    # on each node
//
// A coordinator answers the same job API but scatters each grid as
// shard work units over joined workers; workers consult the
// coordinator's shared cell and trace caches before simulating and
// publish what they compute. In -worker mode, -addr serves only the
// worker's own observability endpoints.
//
// SIGTERM or SIGINT drains gracefully: in-flight cells finish, every
// unfinished job's completed cells are checkpointed under -drain-dir as
// -cells-in-loadable dumps (a draining worker hands its unit back to
// the coordinator instead), and the process exits 0. See
// docs/SERVING.md for the API reference and cache semantics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"specctrl/internal/cliflags"
	"specctrl/internal/cluster"
	"specctrl/internal/experiments"
	"specctrl/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its environment injected: stderr for logs and an
// optional stop channel tests can signal instead of SIGTERM. It returns
// after a graceful drain.
func run(args []string, stderr io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("simserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8344", "listen address (use :0 for an ephemeral port; in -worker mode, observability only)")
		addrFile  = fs.String("addr-file", "", "write the bound base URL to this file once listening")
		cacheDir  = fs.String("cache-dir", "simserved-cache", "content-addressed result cache directory")
		drainDir  = fs.String("drain-dir", "", "drain checkpoint directory (default: <cache-dir>/drain)")
		jobs      = cliflags.Jobs(fs, 0, "runner pool width per grid (0 = all CPUs)")
		jobConc   = fs.Int("job-concurrency", 2, "jobs executing concurrently")
		queue     = fs.Int("queue", 0, "admission queue depth (0 = 2x pool width)")
		jobTO     = fs.Duration("job-timeout", 0, "per-job execution timeout (0 = none)")
		retry     = fs.Duration("retry-after", 10*time.Second, "Retry-After hint on 429/503")
		committed = cliflags.Committed(fs, 0, "default committed instructions per run (0 = paper default 2M)")
		replayF   = cliflags.Replay(fs)
		cacheMB   = cliflags.TraceCacheMB(fs)
		traceF    = cliflags.RegisterTrace(fs)
		clusterF  = cliflags.RegisterCluster(fs)
		synthF    = cliflags.RegisterSynth(fs)
		policyF   = cliflags.RegisterPolicy(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := clusterF.Validate(); err != nil {
		return err
	}
	// Load registers -synth-profile / -ingest-trace workloads in the
	// process-wide registry, so every mode — plain server, coordinator,
	// and worker — can resolve the synth: names that jobs reference.
	// (Workers must ingest the same -ingest-trace files as the
	// coordinator; profile-backed workloads additionally travel as
	// vectors inside each work unit. See docs/CLUSTER.md.)
	synthWs, synthN, err := synthF.Load()
	if err != nil {
		return err
	}

	if *clusterF.Worker {
		if *policyF.Spec != "" || *policyF.Levels != "" {
			// Workers rebuild their parameters from each scattered unit,
			// which carries the coordinator's policy spec.
			return fmt.Errorf("-%s applies to servers and coordinators; workers receive the policy per unit", cliflags.PolicyFlag)
		}
		return runWorker(clusterF, *addr, *addrFile, *jobs, int64(*cacheMB)<<20, traceF, stderr, stop)
	}

	replayMode, err := cliflags.ParseReplay(*replayF)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Addr:            *addr,
		CacheDir:        *cacheDir,
		DrainDir:        *drainDir,
		Jobs:            *jobs,
		JobConcurrency:  *jobConc,
		QueueDepth:      *queue,
		JobTimeout:      *jobTO,
		RetryAfter:      *retry,
		TraceCacheBytes: int64(*cacheMB) << 20,
		ArchCacheBytes:  int64(*cacheMB) << 20,
		// serve.New installs a default tracer when the flags didn't ask
		// for one, so /debug/traces always works on a running server.
		Tracer: traceF.NewTracer(),
	}
	p := experiments.DefaultParams()
	if *committed > 0 {
		p.MaxCommitted = *committed
	}
	p.Replay = replayMode
	p.SynthN = synthN
	p.SynthWorkloads = synthWs
	pol, err := policyF.Load()
	if err != nil {
		return err
	}
	p.Pipeline.Policy = pol
	cfg.Params = p

	if *clusterF.Coordinator {
		return runCoordinator(cfg, *clusterF.Heartbeat, *addrFile, *cacheDir, traceF, stderr, stop)
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if err := publishAddr(*addrFile, srv.URL(), srv.Drain); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: serving on %s (cache %s)\n", srv.URL(), *cacheDir)
	fmt.Fprintf(stderr, "simserved: job API /v1/jobs, metrics /metrics, readiness /readyz\n")

	awaitStop(stderr, stop, "draining (in-flight cells finish, queued work is checkpointed)")
	if err := srv.Drain(); err != nil {
		return err
	}
	if err := traceF.Finish(srv.Tracer(), "simserved", stderr); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: drained\n")
	return nil
}

// runCoordinator serves the job API in cluster-head mode: same API,
// but grids are scattered across joined workers before the local
// assembly pass.
func runCoordinator(cfg serve.Config, heartbeat time.Duration, addrFile, cacheDir string,
	traceF cliflags.Trace, stderr io.Writer, stop <-chan struct{}) error {
	co, err := cluster.New(cluster.Config{Serve: cfg, Heartbeat: heartbeat})
	if err != nil {
		return err
	}
	if err := publishAddr(addrFile, co.URL(), co.Drain); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: coordinating on %s (cache %s)\n", co.URL(), cacheDir)
	fmt.Fprintf(stderr, "simserved: job API /v1/jobs, workers join via /cluster/v1/workers, status /cluster/v1/status\n")

	awaitStop(stderr, stop, "draining (workers hand back units, unfinished jobs are checkpointed)")
	if err := co.Drain(); err != nil {
		return err
	}
	if err := traceF.Finish(co.Server().Tracer(), "simserved", stderr); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: drained\n")
	return nil
}

// runWorker joins a coordinator and executes shard units until
// signalled, then drains gracefully (the current unit is handed back
// for reassignment).
func runWorker(clusterF cliflags.Cluster, addr, addrFile string, jobsN int, traceCacheBytes int64,
	traceF cliflags.Trace, stderr io.Writer, stop <-chan struct{}) error {
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator:     *clusterF.Join,
		Node:            *clusterF.Node,
		Addr:            addr,
		Jobs:            jobsN,
		TraceCacheBytes: traceCacheBytes,
		Tracer:          traceF.NewTracer(),
	})
	if err != nil {
		return err
	}
	if err := publishAddr(addrFile, w.URL(), func() error { return w.Drain() }); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: worker %s joined %s", w.ID(), *clusterF.Join)
	if w.URL() != "" {
		fmt.Fprintf(stderr, " (metrics on %s/metrics)", w.URL())
	}
	fmt.Fprintln(stderr)

	awaitStop(stderr, stop, "draining (current unit is handed back to the coordinator)")
	if err := w.Drain(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simserved: worker drained\n")
	return nil
}

// publishAddr writes the bound URL to addrFile (when requested),
// draining the just-started service if the write fails.
func publishAddr(addrFile, url string, drain func() error) error {
	if addrFile == "" {
		return nil
	}
	if err := os.WriteFile(addrFile, []byte(url+"\n"), 0o644); err != nil {
		drain()
		return err
	}
	return nil
}

// awaitStop blocks until SIGTERM/SIGINT or the test stop channel.
func awaitStop(stderr io.Writer, stop <-chan struct{}, what string) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "simserved: %v: %s\n", sig, what)
	case <-stop:
		fmt.Fprintf(stderr, "simserved: stop requested: %s\n", what)
	}
}
