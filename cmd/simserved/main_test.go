package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke boots the real command loop on an ephemeral port,
// exercises the health/readiness endpoints and one analytic job, then
// stops it through the drain path.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	stop := make(chan struct{})
	done := make(chan error, 1)
	var logs bytes.Buffer
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-cache-dir", filepath.Join(dir, "cache"),
		}, &logs, stop)
	}()

	var base string
	for i := 0; i < 100; i++ {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = strings.TrimSpace(string(data))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never wrote %s; logs:\n%s", addrFile, logs.String())
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz: %d", code)
	}
	if code, body := get("/buildinfo"); code != 200 || !strings.Contains(body, "goVersion") {
		t.Errorf("/buildinfo: %d %q", code, body)
	}

	// One analytic job end-to-end through the public API.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"version":1,"experiments":["fig1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ ID, Status string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct{ State string }
		if _, body := get(sub.Status); body != "" {
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				t.Fatal(err)
			}
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after stop")
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("logs missing drain message:\n%s", logs.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var logs bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &logs, nil); err == nil {
		t.Error("bad flag accepted")
	}
}
