// Smtfetch: demonstrate the SMT fetch-policy application (§2.2 "SMT"):
// two hardware threads share one fetch port; the confidence-directed
// policy skips threads with unresolved low-confidence branches and wins
// aggregate throughput over round-robin, because it stops feeding fetch
// slots to threads that are probably on the wrong path.
//
//	go run ./examples/smtfetch
package main

import (
	"fmt"
	"log"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/smt"
	"specctrl/internal/workload"
)

func threads(names ...string) []*isa.Program {
	var out []*isa.Program
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, w.Build(1<<30))
	}
	return out
}

func main() {
	cfg := smt.Config{
		CycleBudget: 500_000,
		Pipeline:    pipeline.DefaultConfig(),
	}
	newPred := func() bpred.Predictor { return bpred.NewGshare(12) }
	newEst := func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }

	fmt.Println("-- predictable + hostile thread mix (m88ksim, go) --")
	c, err := smt.Compare(cfg, threads("m88ksim", "go"), policy.Factories{Predictor: newPred, Estimator: newEst})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Render())

	fmt.Println("-- four-thread mix --")
	c4, err := smt.Compare(cfg, threads("compress", "gcc", "perl", "go"), policy.Factories{Predictor: newPred, Estimator: newEst})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c4.Render())
	fmt.Println("With four threads each thread fetches at most every fourth cycle,")
	fmt.Println("so its branches usually resolve before its next turn and the")
	fmt.Println("confidence policy degenerates to round-robin — confidence-directed")
	fmt.Println("fetch matters most when threads are fetch-hungry (few threads, or")
	fmt.Println("deep resolve latency).")
}
