// Eagerexec: demonstrate the eager (dual-path) execution application
// (§2.2 "Eager Execution"): measure several estimators' quadrants on a
// hostile workload, then rank them under the dual-path cost model —
// fork on low confidence, pay a fork cost, avoid the misprediction
// penalty when the fork was justified. High SPEC and PVN win.
//
//	go run ./examples/eagerexec
package main

import (
	"fmt"
	"log"
	"sort"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/eager"
	"specctrl/internal/metrics"
	"specctrl/internal/pipeline"
	"specctrl/internal/workload"
)

func main() {
	w, err := workload.ByName("go") // the least predictable benchmark
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 1_000_000

	ests := []conf.Estimator{
		conf.NewJRS(conf.DefaultJRS),
		conf.NewJRS(conf.JRSConfig{Entries: 4096, Bits: 4, Threshold: 7, Enhanced: true}),
		conf.SatCounters{},
		conf.NewDistance(2),
		conf.NewDistance(5),
		conf.Always{High: false}, // fork on everything (degenerate)
	}
	cfg.Estimators = ests
	sim, err := pipeline.New(cfg, w.Build(1<<30), bpred.NewGshare(12))
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	var labels []string
	var qs []metrics.Quadrant
	for _, cs := range st.Confidence {
		labels = append(labels, cs.Name)
		qs = append(qs, cs.CommittedQ)
	}
	model := eager.DefaultModel()
	rows, err := model.Rank(labels, qs)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Outcome.SavedPerKilo > rows[j].Outcome.SavedPerKilo
	})
	fmt.Printf("workload %s: misprediction rate %.1f%%\n\n", w.Name, st.MispredictRate()*100)
	fmt.Print(eager.Render(model, rows))
	fmt.Println("\n'saved' is misprediction cycles recovered per 1000 branches when")
	fmt.Println("forking on that estimator's low-confidence branches.")
}
