// Tunedstatic: demonstrate the paper's §5 future-work item implemented
// in this library — tuning static confidence to hit a SPEC or PVN target
// instead of using one fixed accuracy threshold — plus estimator
// combinators (And/Or) for composing hardware schemes with static hints.
//
//	go run ./examples/tunedstatic
package main

import (
	"fmt"
	"log"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/profile"
	"specctrl/internal/workload"
)

func main() {
	w, err := workload.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(1 << 30)
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 500_000

	// 1. Profile pass: per-branch-site accuracy under the predictor.
	pcfg := cfg
	pcfg.CollectSiteStats = true
	train, err := pipeline.New(pcfg, prog, bpred.NewGshare(12))
	if err != nil {
		log.Fatal(err)
	}
	tst, err := train.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d branch sites over %d branches\n\n",
		len(tst.Sites), tst.CommittedBr)

	// 2. Tune static estimators for explicit targets, and also build
	//    the paper's fixed-threshold variant for comparison.
	fixed := profile.FromSites(tst.Sites, profile.DefaultOptions())
	spec70, err := profile.Tune(tst.Sites, profile.GoalSPEC, 0.70)
	if err != nil {
		log.Fatal(err)
	}
	spec90, err := profile.Tune(tst.Sites, profile.GoalSPEC, 0.90)
	if err != nil {
		log.Fatal(err)
	}
	pvn30, err := profile.Tune(tst.Sites, profile.GoalPVN, 0.30)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Combinators: require BOTH the static hint and the hardware
	//    saturating counters to be confident.
	combo := conf.And{A: spec70, B: conf.SatCounters{}}

	// 4. Evaluate everything in one run.
	names := []string{"Static>90% (paper)", "Tuned SPEC>=70%", "Tuned SPEC>=90%",
		"Tuned PVN>=30%", "And(SPEC70, SatCnt)"}
	cfg.Estimators = []conf.Estimator{fixed, spec70, spec90, pvn30, combo}
	sim, err := pipeline.New(cfg, prog, bpred.NewGshare(12))
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %s\n", "estimator", "metrics (committed branches)")
	for i, cs := range st.Confidence {
		fmt.Printf("%-20s %s\n", names[i], cs.CommittedQ.Compute())
	}
	fmt.Println("\nTuning trades SENS for SPEC on a dial; the And combinator pushes")
	fmt.Println("SPEC and PVP higher still by demanding agreement from two schemes.")
}
