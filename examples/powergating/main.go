// Powergating: demonstrate pipeline gating (§2.2 "Power conservation"):
// stall fetch while too many low-confidence branches are in flight, and
// measure how much wrong-path work disappears versus how much slower the
// program runs, across gating thresholds.
//
//	go run ./examples/powergating
package main

import (
	"fmt"
	"log"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/gating"
	"specctrl/internal/isa"
	"specctrl/internal/pipeline"
	"specctrl/internal/policy"
	"specctrl/internal/workload"
)

func main() {
	names := []string{"compress", "gcc", "go", "perl"}
	progs := map[string]*isa.Program{}
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		progs[n] = w.Build(1 << 30)
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.MaxCommitted = 500_000

	newPred := func() bpred.Predictor { return bpred.NewGshare(12) }
	newEst := func() conf.Estimator { return conf.NewJRS(conf.DefaultJRS) }

	for thr := 1; thr <= 3; thr++ {
		res, err := gating.EvaluateSuite(
			gating.Config{Threshold: thr, Pipeline: pcfg},
			progs, policy.Factories{Predictor: newPred, Estimator: newEst}, names)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
	fmt.Println("Reading the table: 'extra-work' is wrong-path instructions per")
	fmt.Println("committed instruction; gating trades a small slowdown for a large")
	fmt.Println("reduction — the trade sharpens as the estimator's PVN rises.")
}
