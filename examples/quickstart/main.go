// Quickstart: simulate one benchmark on a gshare predictor with two
// confidence estimators attached, then print the quadrant table and the
// paper's four metrics for each estimator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specctrl/internal/bpred"
	"specctrl/internal/conf"
	"specctrl/internal/pipeline"
	"specctrl/internal/workload"
)

func main() {
	// 1. Pick a benchmark from the suite. Build scales with the outer
	//    iteration count; MaxCommitted below bounds the actual run.
	w, err := workload.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(1 << 30)

	// 2. Configure the pipeline (the paper's machine: 4-wide fetch,
	//    3-cycle extra misprediction penalty, 64 kB L1 caches).
	cfg := pipeline.DefaultConfig()
	cfg.MaxCommitted = 1_000_000

	// 3. Attach a predictor and any number of confidence estimators.
	//    Estimators observe the run without changing it, so one run
	//    evaluates them all.
	jrs := conf.NewJRS(conf.DefaultJRS) // the hardware-intensive estimator
	sat := conf.SatCounters{}           // the free one (predictor state)
	dist := conf.NewDistance(4)         // the one-counter one (§4.1)
	cfg.Estimators = []conf.Estimator{jrs, sat, dist}
	sim, err := pipeline.New(cfg, prog, bpred.NewGshare(12))
	if err != nil {
		log.Fatal(err) // a ConfigError names the offending Config field
	}

	stats, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Printf("benchmark  %s: %d committed instructions, %d branches, IPC %.2f\n",
		w.Name, stats.Committed, stats.CommittedBr, stats.IPC())
	fmt.Printf("prediction accuracy %.1f%%, speculation ratio %.2f\n\n",
		stats.CommittedQ.Accuracy()*100, stats.SpeculationRatio())

	for _, cs := range stats.Confidence {
		q := cs.CommittedQ
		fmt.Printf("%-12s quadrants Chc=%d Ihc=%d Clc=%d Ilc=%d\n",
			cs.Name, q.Chc, q.Ihc, q.Clc, q.Ilc)
		fmt.Printf("             %s\n\n", q.Compute())
	}
}
